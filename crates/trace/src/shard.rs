//! Sharded event buffers, the file-name string table, and serializable
//! trace snapshots.
//!
//! The original `Trace` funneled every rank's records through one global
//! `Mutex<Vec<TraceEvent>>`, so enabling tracing serialized all ranks on a
//! single lock — the instrumentation perturbed exactly the contention it
//! was supposed to measure. The sharded buffer gives each recording rank
//! its own shard (selected by `rank % SHARD_COUNT`): the owning rank is the
//! only thread that ever pushes to its shard, so its mutex is uncontended
//! in steady state and recording scales with rank count. Shards are merged
//! only at snapshot time.
//!
//! File names are interned into a [`FileTable`]: the hot path stores a
//! small `u32` id per storage op instead of cloning a `String`, and the
//! table travels with the events inside a [`TraceSnapshot`].

use crate::TraceEvent;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock, RwLock};

/// Number of event shards. Ranks map onto shards by `rank % SHARD_COUNT`,
/// so jobs up to this many rank-threads get a private shard each; larger
/// jobs share shards pairwise, which still bounds contention to
/// `nprocs / SHARD_COUNT` writers per lock.
pub const SHARD_COUNT: usize = 64;

/// The sharded event store.
pub(crate) struct EventShards {
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl EventShards {
    pub(crate) fn new() -> EventShards {
        EventShards {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Append one event to `owner`'s shard. `owner` is the rank doing the
    /// recording, which keeps each shard single-writer.
    #[inline]
    pub(crate) fn push(&self, owner: usize, ev: TraceEvent) {
        self.shards[owner % SHARD_COUNT].lock().unwrap().push(ev);
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Merge all shards into one vec, leaving the shards intact.
    pub(crate) fn merged(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.lock().unwrap().iter().cloned());
        }
        out
    }

    /// Merge all shards into one vec, draining them.
    pub(crate) fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.append(&mut s.lock().unwrap());
        }
        out
    }
}

/// Interned file names: `intern` maps a name to a dense `u32` id; the
/// names vector resolves ids back for reports and exports.
pub(crate) struct FileTable {
    inner: RwLock<FileTableInner>,
}

#[derive(Default)]
struct FileTableInner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

impl FileTable {
    pub(crate) fn new() -> FileTable {
        FileTable {
            inner: RwLock::new(FileTableInner::default()),
        }
    }

    /// Id for `name`, interning it on first sight. The common case (name
    /// already interned) takes a read lock and performs no allocation.
    pub(crate) fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self.inner.read().unwrap().map.get(name) {
            return id;
        }
        let mut w = self.inner.write().unwrap();
        if let Some(&id) = w.map.get(name) {
            return id;
        }
        let id = w.names.len() as u32;
        w.names.push(name.to_string());
        w.map.insert(name.to_string(), id);
        id
    }

    pub(crate) fn names(&self) -> Vec<String> {
        self.inner.read().unwrap().names.clone()
    }
}

/// A merged view of everything a trace recorded: the event stream plus the
/// file-name table that resolves the `u32` file ids inside storage-op and
/// fault events. This is the unit the exporters and [`crate::JobReport`]
/// consume, and it serializes to JSON so a traced run can hand its raw
/// timeline to `spio trace` for Chrome-trace conversion.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    pub events: Vec<TraceEvent>,
    /// `files[id]` is the file name interned as `id`.
    pub files: Vec<String>,
}

impl TraceSnapshot {
    /// Resolve a file id to its name (`"file#<id>"` if unknown — only
    /// possible for hand-built snapshots).
    pub fn file_name(&self, id: u32) -> String {
        self.files
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("file#{id}"))
    }

    /// Largest event end-timestamp, in microseconds since the job epoch.
    pub fn end_us(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Phase { start_us, dur, .. }
                | TraceEvent::StorageOp { start_us, dur, .. } => start_us + dur.as_micros() as u64,
                TraceEvent::Message { at_us, .. }
                | TraceEvent::Fault { at_us, .. }
                | TraceEvent::Verify { at_us, .. } => *at_us,
            })
            .max()
            .unwrap_or(0)
    }

    // ---- serialization ----

    /// Serialize to the `spio-trace-snapshot` JSON format: both string
    /// tables (file names and static phase/op/kind names) plus one compact
    /// object per event.
    pub fn to_json(&self) -> String {
        use spio_util::Json;
        let mut names: Vec<&str> = Vec::new();
        let mut name_ids: HashMap<&str, u64> = HashMap::new();
        let mut name_id = |s: &'static str| -> u64 {
            if let Some(&id) = name_ids.get(s) {
                return id;
            }
            let id = names.len() as u64;
            names.push(s);
            name_ids.insert(s, id);
            id
        };
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| match *e {
                TraceEvent::Phase {
                    rank,
                    phase,
                    start_us,
                    dur,
                } => Json::Obj(vec![
                    ("t".into(), Json::str("phase")),
                    ("rank".into(), Json::u64(rank as u64)),
                    ("name".into(), Json::u64(name_id(phase))),
                    ("start_us".into(), Json::u64(start_us)),
                    ("dur_us".into(), Json::u64(dur.as_micros() as u64)),
                ]),
                TraceEvent::Message {
                    src,
                    dst,
                    tag,
                    bytes,
                    dir,
                    at_us,
                } => Json::Obj(vec![
                    ("t".into(), Json::str("msg")),
                    ("src".into(), Json::u64(src as u64)),
                    ("dst".into(), Json::u64(dst as u64)),
                    ("tag".into(), Json::u64(tag as u64)),
                    ("bytes".into(), Json::u64(bytes)),
                    (
                        "dir".into(),
                        Json::str(match dir {
                            crate::Dir::Sent => "sent",
                            crate::Dir::Received => "received",
                        }),
                    ),
                    ("at_us".into(), Json::u64(at_us)),
                ]),
                TraceEvent::StorageOp {
                    rank,
                    op,
                    file,
                    bytes,
                    start_us,
                    dur,
                } => Json::Obj(vec![
                    ("t".into(), Json::str("op")),
                    ("rank".into(), Json::u64(rank as u64)),
                    ("name".into(), Json::u64(name_id(op))),
                    ("file".into(), Json::u64(file as u64)),
                    ("bytes".into(), Json::u64(bytes)),
                    ("start_us".into(), Json::u64(start_us)),
                    ("dur_us".into(), Json::u64(dur.as_micros() as u64)),
                ]),
                TraceEvent::Fault {
                    rank,
                    kind,
                    file,
                    injected,
                    at_us,
                } => Json::Obj(vec![
                    ("t".into(), Json::str("fault")),
                    ("rank".into(), Json::u64(rank as u64)),
                    ("name".into(), Json::u64(name_id(kind))),
                    ("file".into(), Json::u64(file as u64)),
                    ("injected".into(), Json::Bool(injected)),
                    ("at_us".into(), Json::u64(at_us)),
                ]),
                TraceEvent::Verify {
                    rank,
                    rule,
                    ref detail,
                    at_us,
                } => Json::Obj(vec![
                    ("t".into(), Json::str("verify")),
                    ("rank".into(), Json::u64(rank as u64)),
                    ("name".into(), Json::u64(name_id(rule))),
                    ("detail".into(), Json::str(detail)),
                    ("at_us".into(), Json::u64(at_us)),
                ]),
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::str("spio-trace-snapshot")),
            ("version".into(), Json::u64(1)),
            (
                "files".into(),
                Json::Arr(self.files.iter().map(Json::str).collect()),
            ),
            (
                "names".into(),
                Json::Arr(names.into_iter().map(Json::str).collect()),
            ),
            ("events".into(), Json::Arr(events)),
        ])
        .to_string()
    }

    /// Parse a snapshot produced by [`TraceSnapshot::to_json`]. Static
    /// phase/op/kind names come back through a process-wide intern cache
    /// (the distinct-name set is small and bounded, so the leaked bytes
    /// are too).
    pub fn from_json(text: &str) -> Result<TraceSnapshot, String> {
        use spio_util::Json;
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("spio-trace-snapshot") {
            return Err("not a spio trace snapshot".into());
        }
        let files: Vec<String> = doc
            .get("files")
            .and_then(Json::as_arr)
            .ok_or("missing 'files' array")?
            .iter()
            .map(|j| j.as_str().map(str::to_string).ok_or("non-string file name"))
            .collect::<Result<_, _>>()?;
        let names: Vec<&'static str> = doc
            .get("names")
            .and_then(Json::as_arr)
            .ok_or("missing 'names' array")?
            .iter()
            .map(|j| j.as_str().map(intern_static).ok_or("non-string name"))
            .collect::<Result<_, _>>()?;
        let name_at = |j: &Json| -> Result<&'static str, String> {
            let id = j
                .get("name")
                .and_then(Json::as_u64)
                .ok_or("missing 'name'")? as usize;
            names
                .get(id)
                .copied()
                .ok_or_else(|| format!("name id {id} out of range"))
        };
        let num = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric '{key}'"))
        };
        let mut events = Vec::new();
        for ev in doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("missing 'events' array")?
        {
            let kind = ev.get("t").and_then(Json::as_str).ok_or("missing 't'")?;
            events.push(match kind {
                "phase" => TraceEvent::Phase {
                    rank: num(ev, "rank")? as usize,
                    phase: name_at(ev)?,
                    start_us: num(ev, "start_us")?,
                    dur: std::time::Duration::from_micros(num(ev, "dur_us")?),
                },
                "msg" => TraceEvent::Message {
                    src: num(ev, "src")? as usize,
                    dst: num(ev, "dst")? as usize,
                    tag: num(ev, "tag")? as u32,
                    bytes: num(ev, "bytes")?,
                    dir: match ev.get("dir").and_then(Json::as_str) {
                        Some("sent") => crate::Dir::Sent,
                        Some("received") => crate::Dir::Received,
                        other => return Err(format!("bad message dir {other:?}")),
                    },
                    at_us: num(ev, "at_us")?,
                },
                "op" => TraceEvent::StorageOp {
                    rank: num(ev, "rank")? as usize,
                    op: name_at(ev)?,
                    file: num(ev, "file")? as u32,
                    bytes: num(ev, "bytes")?,
                    start_us: num(ev, "start_us")?,
                    dur: std::time::Duration::from_micros(num(ev, "dur_us")?),
                },
                "fault" => TraceEvent::Fault {
                    rank: num(ev, "rank")? as usize,
                    kind: name_at(ev)?,
                    file: num(ev, "file")? as u32,
                    injected: matches!(ev.get("injected"), Some(Json::Bool(true))),
                    at_us: num(ev, "at_us")?,
                },
                "verify" => TraceEvent::Verify {
                    rank: num(ev, "rank")? as usize,
                    rule: name_at(ev)?,
                    detail: ev
                        .get("detail")
                        .and_then(Json::as_str)
                        .ok_or("missing 'detail'")?
                        .to_string(),
                    at_us: num(ev, "at_us")?,
                },
                other => return Err(format!("unknown event type '{other}'")),
            });
        }
        Ok(TraceSnapshot { events, files })
    }
}

/// Intern a runtime string as `&'static str`. Only used when parsing
/// serialized snapshots, where phase/op/kind names must come back as the
/// static strings the event structs carry. Each distinct name is leaked at
/// most once, process-wide.
pub(crate) fn intern_static(s: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap();
    if let Some(&interned) = cache.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dir;
    use std::time::Duration;

    #[test]
    fn file_table_interns_once() {
        let t = FileTable::new();
        let a = t.intern("file_0.spd");
        let b = t.intern("file_1.spd");
        let a2 = t.intern("file_0.spd");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.names(), vec!["file_0.spd", "file_1.spd"]);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let snap = TraceSnapshot {
            events: vec![
                TraceEvent::Phase {
                    rank: 1,
                    phase: "aggregation",
                    start_us: 10,
                    dur: Duration::from_micros(25),
                },
                TraceEvent::Message {
                    src: 0,
                    dst: 1,
                    tag: 2,
                    bytes: 512,
                    dir: Dir::Sent,
                    at_us: 7,
                },
                TraceEvent::StorageOp {
                    rank: 1,
                    op: "write_file",
                    file: 0,
                    bytes: 4096,
                    start_us: 40,
                    dur: Duration::from_micros(9),
                },
                TraceEvent::Fault {
                    rank: 1,
                    kind: "transient",
                    file: 0,
                    injected: true,
                    at_us: 44,
                },
                TraceEvent::Verify {
                    rank: 2,
                    rule: "collective-mismatch",
                    detail: "rank 2 entered barrier, rank 0 entered allgather".to_string(),
                    at_us: 45,
                },
            ],
            files: vec!["file_0.spd".to_string()],
        };
        let back = TraceSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.end_us(), 49);
        assert_eq!(back.file_name(0), "file_0.spd");
        assert_eq!(back.file_name(9), "file#9");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TraceSnapshot::from_json("{}").is_err());
        assert!(TraceSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn intern_static_is_stable() {
        let a = intern_static("some-phase-name");
        let b = intern_static("some-phase-name");
        assert!(std::ptr::eq(a, b));
    }
}
