//! # spio-trace
//!
//! The observability layer for the I/O system. The paper's whole evaluation
//! is about *where time goes* — aggregation vs. file I/O (Fig. 6), files
//! touched per query, bytes moved per rank — and related I/O studies lean on
//! Darshan-style per-operation records to characterize behaviour. This crate
//! provides the recording substrate plus the analysis and export layers:
//!
//! * [`Trace`] — a cloneable handle shared by all ranks of a job. Disabled
//!   by default ([`Trace::off`]), in which case every recording call is a
//!   branch on a `None` and performs **no allocation and no locking**.
//!   Enabled recording goes to *per-rank sharded buffers*: each recording
//!   rank owns a shard, so its lock is uncontended and enabled tracing no
//!   longer serializes the job it is measuring. Every event carries a
//!   timestamp relative to the trace's creation (the *job epoch*), and
//!   storage-op file names are interned to `u32` ids so the hot path never
//!   clones a `String`.
//! * [`TraceEvent`] — the record kinds: per-rank *phase spans*, the
//!   per-`(src, dst, tag)` *communication matrix* entries captured by the
//!   instrumented `Comm` wrapper in `spio-comm`, Darshan-style *storage-op
//!   records* captured by the instrumented `Storage` wrappers in
//!   `spio-core`, and *fault events* (injected chaos faults and organic
//!   storage errors).
//! * [`Metrics`] — a lock-free registry of counters, gauges, and
//!   power-of-two-bucket histograms (p50/p95/p99), carried by every enabled
//!   trace and populated by the same wrappers; exported as JSONL.
//! * [`TraceSnapshot`] — the merged event stream plus the file-name table,
//!   serializable as JSON; feeds [`JobReport`] (the `spio report`
//!   summary: Fig. 6-style phase breakdown, latency percentiles,
//!   imbalance/straggler tables), [`chrome_trace`] (Chrome trace-event
//!   export for `chrome://tracing`/Perfetto), and [`Timeline`] (ASCII
//!   lanes).

mod chrome;
mod metrics;
mod report;
mod shard;
mod timeline;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics, HISTOGRAM_BUCKETS};
pub use report::{
    AggBytes, CommEntry, FaultTotal, ImbalanceRow, JobReport, MetricRow, OpLatency, PhaseTotal,
    StorageTotal, VerifyTotal,
};
pub use shard::{TraceSnapshot, SHARD_COUNT};
pub use timeline::{ScopedSpan, Span, Timeline};

use shard::{EventShards, FileTable};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message direction for communication-matrix records: each message is
/// recorded once when posted and once when its receive completes, which is
/// what lets tests assert byte conservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Sent,
    Received,
}

/// One recorded observation. Timestamps (`start_us`, `at_us`) are
/// microseconds since the job epoch — the moment the [`Trace`] was created.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A rank spent `dur` inside the named phase, starting at `start_us`.
    /// Phase names are static so recording a span never allocates.
    Phase {
        rank: usize,
        phase: &'static str,
        start_us: u64,
        dur: Duration,
    },
    /// A point-to-point message of `bytes` payload bytes between two ranks,
    /// observed at `at_us` (post time for `Sent`, completion for
    /// `Received`).
    Message {
        src: usize,
        dst: usize,
        tag: u32,
        bytes: u64,
        dir: Dir,
        at_us: u64,
    },
    /// A Darshan-style storage-operation record. `file` is an id into the
    /// trace's file table (see [`TraceSnapshot::files`]).
    StorageOp {
        rank: usize,
        op: &'static str,
        file: u32,
        bytes: u64,
        start_us: u64,
        dur: Duration,
    },
    /// A storage fault: `injected == true` for chaos-injected faults,
    /// `false` for organic errors observed by the traced wrappers. `kind`
    /// names the fault ("transient", "torn_write", "io_error", …).
    Fault {
        rank: usize,
        kind: &'static str,
        file: u32,
        injected: bool,
        at_us: u64,
    },
    /// A correctness finding emitted by the verification layer
    /// (`spio-verify`'s `CheckedComm`): a rule identifier such as
    /// "collective-mismatch", "handle-leak", or "stall", plus a
    /// human-readable detail string (the rank diff / wait-for graph).
    Verify {
        rank: usize,
        rule: &'static str,
        detail: String,
        at_us: u64,
    },
}

struct Shared {
    /// The job epoch: all event timestamps are relative to this instant.
    epoch: Instant,
    shards: EventShards,
    files: FileTable,
    metrics: Metrics,
}

/// Recording handle. Cheap to clone; clones share the same buffers, so one
/// `Trace::collecting()` handed to every rank of a threaded job yields a
/// single merged event stream.
#[derive(Clone, Default)]
pub struct Trace {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// The no-op sink: every recording call returns immediately without
    /// allocating. This is the default everywhere tracing is optional.
    pub fn off() -> Trace {
        Trace { shared: None }
    }

    /// An enabled, collecting sink. Creation time becomes the job epoch.
    pub fn collecting() -> Trace {
        Trace {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                shards: EventShards::new(),
                files: FileTable::new(),
                metrics: Metrics::enabled(),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Microseconds since the job epoch (0 for a disabled trace).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.shared {
            Some(s) => s.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// The metrics registry carried by this trace. Disabled traces return
    /// the inert registry, so callers can register instruments
    /// unconditionally.
    pub fn metrics(&self) -> Metrics {
        match &self.shared {
            Some(s) => s.metrics.clone(),
            None => Metrics::disabled(),
        }
    }

    /// Record a phase span that *ends now*: the start timestamp is derived
    /// as `now - dur`, which matches how callers measure (an `Instant`
    /// read before the phase, `elapsed()` after).
    #[inline]
    pub fn phase(&self, rank: usize, phase: &'static str, dur: Duration) {
        if let Some(s) = &self.shared {
            let end = s.epoch.elapsed().as_micros() as u64;
            let start_us = end.saturating_sub(dur.as_micros() as u64);
            s.shards.push(
                rank,
                TraceEvent::Phase {
                    rank,
                    phase,
                    start_us,
                    dur,
                },
            );
        }
    }

    /// An RAII span: records a phase with accurate start/duration when the
    /// guard drops. No clock is read when the trace is disabled.
    pub fn span(&self, rank: usize, phase: &'static str) -> ScopedSpan {
        ScopedSpan::new(self, rank, phase)
    }

    /// Record one side of a point-to-point message. The event lands in the
    /// shard of the rank doing the recording: `src` for sends, `dst` for
    /// receives.
    #[inline]
    pub fn message(&self, src: usize, dst: usize, tag: u32, bytes: u64, dir: Dir) {
        if let Some(s) = &self.shared {
            let at_us = s.epoch.elapsed().as_micros() as u64;
            let owner = match dir {
                Dir::Sent => src,
                Dir::Received => dst,
            };
            s.shards.push(
                owner,
                TraceEvent::Message {
                    src,
                    dst,
                    tag,
                    bytes,
                    dir,
                    at_us,
                },
            );
        }
    }

    /// Record a storage operation that ends now. The file name is interned
    /// into the trace's file table — after the first op on a given file the
    /// enabled hot path performs no allocation, and the disabled path never
    /// touches the name at all.
    #[inline]
    pub fn storage_op(&self, rank: usize, op: &'static str, file: &str, bytes: u64, dur: Duration) {
        if let Some(s) = &self.shared {
            let file = s.files.intern(file);
            let end = s.epoch.elapsed().as_micros() as u64;
            let start_us = end.saturating_sub(dur.as_micros() as u64);
            s.shards.push(
                rank,
                TraceEvent::StorageOp {
                    rank,
                    op,
                    file,
                    bytes,
                    start_us,
                    dur,
                },
            );
        }
    }

    /// Record a storage fault: chaos-injected (`injected == true`) or
    /// organic (an error surfaced by a real backend).
    #[inline]
    pub fn fault(&self, rank: usize, kind: &'static str, file: &str, injected: bool) {
        if let Some(s) = &self.shared {
            let file = s.files.intern(file);
            let at_us = s.epoch.elapsed().as_micros() as u64;
            s.shards.push(
                rank,
                TraceEvent::Fault {
                    rank,
                    kind,
                    file,
                    injected,
                    at_us,
                },
            );
        }
    }

    /// Record a verifier finding. `rule` is the stable identifier the job
    /// report aggregates by; `detail` carries the rank-attributed diagnosis
    /// (allocated only when a finding actually fires, so this is never on a
    /// hot path).
    #[inline]
    pub fn verify_finding(&self, rank: usize, rule: &'static str, detail: String) {
        if let Some(s) = &self.shared {
            let at_us = s.epoch.elapsed().as_micros() as u64;
            s.shards.push(
                rank,
                TraceEvent::Verify {
                    rank,
                    rule,
                    detail,
                    at_us,
                },
            );
        }
    }

    /// Clone of all events recorded so far (empty for a disabled trace),
    /// merged across shards. Prefer [`Trace::snapshot`] when file names are
    /// needed, or [`Trace::take_events`] to avoid the clone on long jobs.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(s) => s.shards.merged(),
            None => Vec::new(),
        }
    }

    /// Drain all recorded events, leaving the trace empty (and recording
    /// still enabled). Long-running jobs use this to ship events in chunks
    /// without re-cloning an ever-growing vec.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.shared {
            Some(s) => s.shards.drain(),
            None => Vec::new(),
        }
    }

    /// Merged snapshot: a clone of the events plus the file-name table.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.shared {
            Some(s) => TraceSnapshot {
                events: s.shards.merged(),
                files: s.files.names(),
            },
            None => TraceSnapshot::default(),
        }
    }

    /// Draining snapshot: like [`Trace::snapshot`] but moves the events out
    /// instead of cloning them. The file table is retained (ids stay
    /// stable across takes).
    pub fn take_snapshot(&self) -> TraceSnapshot {
        match &self.shared {
            Some(s) => TraceSnapshot {
                events: s.shards.drain(),
                files: s.files.names(),
            },
            None => TraceSnapshot::default(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.shared {
            Some(s) => s.shards.len(),
            None => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Trace::off();
        t.phase(0, "setup", Duration::from_millis(1));
        t.message(0, 1, 2, 100, Dir::Sent);
        t.storage_op(0, "write_file", "f.spd", 10, Duration::ZERO);
        t.fault(0, "transient", "f.spd", true);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.events().is_empty());
        assert!(t.snapshot().events.is_empty());
        assert!(!t.metrics().is_enabled());
    }

    #[test]
    fn collecting_shares_buffer_across_clones() {
        let t = Trace::collecting();
        let t2 = t.clone();
        t.phase(0, "setup", Duration::from_millis(1));
        t2.message(1, 0, 7, 64, Dir::Received);
        assert_eq!(t.len(), 2);
        assert_eq!(t.snapshot(), t2.snapshot());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Trace::collecting();
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        t.message(r, (r + 1) % 8, 1, i, Dir::Sent);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 800);
    }

    #[test]
    fn storage_op_interns_file_names() {
        let t = Trace::collecting();
        t.storage_op(0, "write_file", "a.spd", 1, Duration::ZERO);
        t.storage_op(1, "read_file", "b.spd", 2, Duration::ZERO);
        t.storage_op(2, "read_file", "a.spd", 3, Duration::ZERO);
        let snap = t.snapshot();
        assert_eq!(snap.files, vec!["a.spd", "b.spd"]);
        let ids: Vec<u32> = snap
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::StorageOp { file, .. } => *file,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 0, 1]);
    }

    #[test]
    fn take_events_drains() {
        let t = Trace::collecting();
        t.phase(0, "setup", Duration::from_millis(1));
        t.phase(1, "setup", Duration::from_millis(2));
        let taken = t.take_events();
        assert_eq!(taken.len(), 2);
        assert!(t.is_empty(), "take_events leaves the trace empty");
        t.phase(2, "setup", Duration::from_millis(3));
        assert_eq!(t.len(), 1, "recording continues after a take");
    }

    #[test]
    fn take_snapshot_keeps_file_table() {
        let t = Trace::collecting();
        t.storage_op(0, "write_file", "a.spd", 1, Duration::ZERO);
        let first = t.take_snapshot();
        assert_eq!(first.files, vec!["a.spd"]);
        t.storage_op(0, "read_file", "a.spd", 1, Duration::ZERO);
        let second = t.take_snapshot();
        // Same id resolves in the second snapshot too.
        assert_eq!(second.files, vec!["a.spd"]);
        assert_eq!(second.events.len(), 1);
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let t = Trace::collecting();
        t.phase(0, "a", Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        t.phase(0, "b", Duration::ZERO);
        let events = t.events();
        let ts: Vec<u64> = events
            .iter()
            .map(|e| match e {
                TraceEvent::Phase { start_us, .. } => *start_us,
                _ => unreachable!(),
            })
            .collect();
        assert!(ts[0] < ts[1], "epoch-relative timestamps advance: {ts:?}");
    }

    #[test]
    fn phase_start_is_end_minus_duration() {
        let t = Trace::collecting();
        std::thread::sleep(Duration::from_millis(2));
        t.phase(0, "work", Duration::from_millis(1));
        match t.events()[0] {
            TraceEvent::Phase { start_us, dur, .. } => {
                // The span ended "now" (≥ 2ms after epoch) and started
                // `dur` earlier, so start ≥ 1ms after epoch.
                assert!(start_us >= 1_000, "start_us = {start_us}");
                assert_eq!(dur, Duration::from_millis(1));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_shared_across_clones() {
        let t = Trace::collecting();
        t.metrics().counter("x").add(2);
        t.clone().metrics().counter("x").add(3);
        assert_eq!(t.metrics().counter_value("x"), 5);
    }
}
