//! # spio-trace
//!
//! The observability layer for the I/O system. The paper's whole evaluation
//! is about *where time goes* — aggregation vs. file I/O (Fig. 6), files
//! touched per query, bytes moved per rank — and related I/O studies lean on
//! Darshan-style per-operation records to characterize behaviour. This crate
//! provides the recording substrate:
//!
//! * [`Trace`] — a cloneable handle shared by all ranks of a job. Disabled
//!   by default ([`Trace::off`]), in which case every recording call is a
//!   branch on a `None` and performs **no allocation and no locking**.
//! * [`TraceEvent`] — the three record kinds: per-rank *phase spans*
//!   (setup / aggregation / shuffle / file-I/O / meta, and read phases), a
//!   per-`(src, dst, tag)` *communication matrix* entry captured by the
//!   instrumented `Comm` wrapper in `spio-comm`, and *storage-op records*
//!   (op, file, bytes, duration) captured by the instrumented `Storage`
//!   wrapper in `spio-core`.
//! * [`JobReport`] — events merged into a serializable (JSON) summary that
//!   `spio report` renders as a Fig. 6-style phase breakdown plus the
//!   communication matrix.

mod report;

pub use report::{CommEntry, JobReport, PhaseTotal, StorageTotal};

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Message direction for communication-matrix records: each message is
/// recorded once when posted and once when its receive completes, which is
/// what lets tests assert byte conservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Sent,
    Received,
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A rank spent `dur` inside the named phase. Phase names are static
    /// so recording a span never allocates.
    Phase {
        rank: usize,
        phase: &'static str,
        dur: Duration,
    },
    /// A point-to-point message of `bytes` payload bytes between two ranks.
    Message {
        src: usize,
        dst: usize,
        tag: u32,
        bytes: u64,
        dir: Dir,
    },
    /// A Darshan-style storage-operation record.
    StorageOp {
        rank: usize,
        op: &'static str,
        file: String,
        bytes: u64,
        dur: Duration,
    },
}

#[derive(Default)]
struct Buffer {
    events: Mutex<Vec<TraceEvent>>,
}

/// Recording handle. Cheap to clone; clones share the same buffer, so one
/// `Trace::collecting()` handed to every rank of a threaded job yields a
/// single merged event stream.
#[derive(Clone, Default)]
pub struct Trace {
    buffer: Option<Arc<Buffer>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// The no-op sink: every recording call returns immediately without
    /// allocating. This is the default everywhere tracing is optional.
    pub fn off() -> Trace {
        Trace { buffer: None }
    }

    /// An enabled, collecting sink.
    pub fn collecting() -> Trace {
        Trace {
            buffer: Some(Arc::new(Buffer::default())),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buffer.is_some()
    }

    /// Record a phase span.
    #[inline]
    pub fn phase(&self, rank: usize, phase: &'static str, dur: Duration) {
        if let Some(buf) = &self.buffer {
            buf.events
                .lock()
                .unwrap()
                .push(TraceEvent::Phase { rank, phase, dur });
        }
    }

    /// Record one side of a point-to-point message.
    #[inline]
    pub fn message(&self, src: usize, dst: usize, tag: u32, bytes: u64, dir: Dir) {
        if let Some(buf) = &self.buffer {
            buf.events.lock().unwrap().push(TraceEvent::Message {
                src,
                dst,
                tag,
                bytes,
                dir,
            });
        }
    }

    /// Record a storage operation. The file name is only materialized when
    /// the sink is enabled — callers pass `&str` and the disabled path does
    /// not allocate.
    #[inline]
    pub fn storage_op(&self, rank: usize, op: &'static str, file: &str, bytes: u64, dur: Duration) {
        if let Some(buf) = &self.buffer {
            buf.events.lock().unwrap().push(TraceEvent::StorageOp {
                rank,
                op,
                file: file.to_string(),
                bytes,
                dur,
            });
        }
    }

    /// Snapshot of all events recorded so far (empty for a disabled trace).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.buffer {
            Some(buf) => buf.events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.buffer {
            Some(buf) => buf.events.lock().unwrap().len(),
            None => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Trace::off();
        t.phase(0, "setup", Duration::from_millis(1));
        t.message(0, 1, 2, 100, Dir::Sent);
        t.storage_op(0, "write_file", "f.spd", 10, Duration::ZERO);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.events().is_empty());
    }

    #[test]
    fn collecting_shares_buffer_across_clones() {
        let t = Trace::collecting();
        let t2 = t.clone();
        t.phase(0, "setup", Duration::from_millis(1));
        t2.message(1, 0, 7, 64, Dir::Received);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Trace::collecting();
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        t.message(r, (r + 1) % 8, 1, i, Dir::Sent);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 800);
    }
}
