//! Merging trace events into a serializable job report.

use crate::{Dir, TraceEvent};
use spio_util::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulated time one rank spent in one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    pub rank: usize,
    pub phase: String,
    pub micros: u64,
}

/// One cell of the communication matrix: all messages from `src` to `dst`
/// with `tag`, with both sides of the ledger so imbalances (messages posted
/// but never received) are visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEntry {
    pub src: usize,
    pub dst: usize,
    pub tag: u32,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub bytes_received: u64,
}

/// A Darshan-style storage-operation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageTotal {
    pub rank: usize,
    pub op: String,
    pub file: String,
    pub bytes: u64,
    pub micros: u64,
}

/// Everything a traced job produced, merged and ready to serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobReport {
    pub nprocs: usize,
    pub phases: Vec<PhaseTotal>,
    pub comm: Vec<CommEntry>,
    pub storage: Vec<StorageTotal>,
}

impl JobReport {
    /// Merge an event stream into a report. Phase spans accumulate per
    /// `(rank, phase)`; messages accumulate per `(src, dst, tag)`; storage
    /// ops are kept as individual records, in arrival order.
    pub fn from_events(nprocs: usize, events: &[TraceEvent]) -> JobReport {
        let mut phases: BTreeMap<(usize, &str), u64> = BTreeMap::new();
        let mut comm: BTreeMap<(usize, usize, u32), [u64; 4]> = BTreeMap::new();
        let mut storage = Vec::new();
        for ev in events {
            match ev {
                TraceEvent::Phase { rank, phase, dur } => {
                    *phases.entry((*rank, phase)).or_default() += dur.as_micros() as u64;
                }
                TraceEvent::Message {
                    src,
                    dst,
                    tag,
                    bytes,
                    dir,
                } => {
                    let cell = comm.entry((*src, *dst, *tag)).or_default();
                    match dir {
                        Dir::Sent => {
                            cell[0] += 1;
                            cell[1] += *bytes;
                        }
                        Dir::Received => {
                            cell[2] += 1;
                            cell[3] += *bytes;
                        }
                    }
                }
                TraceEvent::StorageOp {
                    rank,
                    op,
                    file,
                    bytes,
                    dur,
                } => {
                    storage.push(StorageTotal {
                        rank: *rank,
                        op: op.to_string(),
                        file: file.clone(),
                        bytes: *bytes,
                        micros: dur.as_micros() as u64,
                    });
                }
            }
        }
        JobReport {
            nprocs,
            phases: phases
                .into_iter()
                .map(|((rank, phase), micros)| PhaseTotal {
                    rank,
                    phase: phase.to_string(),
                    micros,
                })
                .collect(),
            comm: comm
                .into_iter()
                .map(|((src, dst, tag), c)| CommEntry {
                    src,
                    dst,
                    tag,
                    msgs_sent: c[0],
                    bytes_sent: c[1],
                    msgs_received: c[2],
                    bytes_received: c[3],
                })
                .collect(),
            storage,
        }
    }

    /// Maximum time any rank spent in `phase` — the bulk-synchronous bound
    /// `WriteStats::merge_max` also computes, which is what the fig6
    /// cross-check compares against.
    pub fn phase_max(&self, phase: &str) -> Duration {
        Duration::from_micros(
            self.phases
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.micros)
                .max()
                .unwrap_or(0),
        )
    }

    /// Sum of a phase's time across ranks.
    pub fn phase_sum(&self, phase: &str) -> Duration {
        Duration::from_micros(
            self.phases
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.micros)
                .sum(),
        )
    }

    /// Sorted distinct phase names.
    pub fn phase_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.phases.iter().map(|p| p.phase.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Matrix cells where the sent and received ledgers disagree (messages
    /// posted but never received, or bytes corrupted in flight). Empty for
    /// a conservation-respecting job.
    pub fn comm_imbalances(&self) -> Vec<&CommEntry> {
        self.comm
            .iter()
            .filter(|c| c.msgs_sent != c.msgs_received || c.bytes_sent != c.bytes_received)
            .collect()
    }

    /// Total payload bytes sent (each message counted once).
    pub fn total_bytes_sent(&self) -> u64 {
        self.comm.iter().map(|c| c.bytes_sent).sum()
    }

    /// Total bytes moved through storage by `op`.
    pub fn storage_bytes(&self, op: &str) -> u64 {
        self.storage
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.bytes)
            .sum()
    }

    /// Number of recorded storage operations of `op` kind.
    pub fn storage_op_count(&self, op: &str) -> usize {
        self.storage.iter().filter(|s| s.op == op).count()
    }

    /// Storage retries recorded by `RetryStorage` wrappers — nonzero means
    /// the job survived transient storage faults.
    pub fn retry_count(&self) -> usize {
        self.storage_op_count("retry")
    }

    // ---- serialization ----

    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("rank".into(), Json::u64(p.rank as u64)),
                    ("phase".into(), Json::str(&p.phase)),
                    ("micros".into(), Json::u64(p.micros)),
                ])
            })
            .collect();
        let comm = self
            .comm
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("src".into(), Json::u64(c.src as u64)),
                    ("dst".into(), Json::u64(c.dst as u64)),
                    ("tag".into(), Json::u64(c.tag as u64)),
                    ("msgs_sent".into(), Json::u64(c.msgs_sent)),
                    ("bytes_sent".into(), Json::u64(c.bytes_sent)),
                    ("msgs_received".into(), Json::u64(c.msgs_received)),
                    ("bytes_received".into(), Json::u64(c.bytes_received)),
                ])
            })
            .collect();
        let storage = self
            .storage
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("rank".into(), Json::u64(s.rank as u64)),
                    ("op".into(), Json::str(&s.op)),
                    ("file".into(), Json::str(&s.file)),
                    ("bytes".into(), Json::u64(s.bytes)),
                    ("micros".into(), Json::u64(s.micros)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::str("spio-job-report")),
            ("version".into(), Json::u64(1)),
            ("nprocs".into(), Json::u64(self.nprocs as u64)),
            ("phases".into(), Json::Arr(phases)),
            ("comm".into(), Json::Arr(comm)),
            ("storage".into(), Json::Arr(storage)),
        ])
        .to_string()
    }

    pub fn from_json(text: &str) -> Result<JobReport, String> {
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("spio-job-report") {
            return Err("not a spio job report".into());
        }
        let field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let text_field = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let arr = |key: &str| -> Result<&[Json], String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing array '{key}'"))
        };
        let mut report = JobReport {
            nprocs: field(&doc, "nprocs")? as usize,
            ..Default::default()
        };
        for p in arr("phases")? {
            report.phases.push(PhaseTotal {
                rank: field(p, "rank")? as usize,
                phase: text_field(p, "phase")?,
                micros: field(p, "micros")?,
            });
        }
        for c in arr("comm")? {
            report.comm.push(CommEntry {
                src: field(c, "src")? as usize,
                dst: field(c, "dst")? as usize,
                tag: field(c, "tag")? as u32,
                msgs_sent: field(c, "msgs_sent")?,
                bytes_sent: field(c, "bytes_sent")?,
                msgs_received: field(c, "msgs_received")?,
                bytes_received: field(c, "bytes_received")?,
            });
        }
        for s in arr("storage")? {
            report.storage.push(StorageTotal {
                rank: field(s, "rank")? as usize,
                op: text_field(s, "op")?,
                file: text_field(s, "file")?,
                bytes: field(s, "bytes")?,
                micros: field(s, "micros")?,
            });
        }
        Ok(report)
    }

    // ---- rendering (the `spio report` subcommand) ----

    /// Human-readable rendering: Fig. 6-style phase breakdown (max across
    /// ranks, proportional bars) followed by the communication matrix and a
    /// storage-op summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("job report — {} ranks\n\n", self.nprocs));

        out.push_str("phase breakdown (max across ranks):\n");
        let names = self.phase_names();
        let maxima: Vec<(String, u64)> = names
            .iter()
            .map(|n| (n.to_string(), self.phase_max(n).as_micros() as u64))
            .collect();
        let total: u64 = maxima.iter().map(|(_, us)| us).sum();
        let widest = maxima.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, us) in &maxima {
            let frac = if total > 0 {
                *us as f64 / total as f64
            } else {
                0.0
            };
            let bar_len = (frac * 40.0).round() as usize;
            out.push_str(&format!(
                "  {name:widest$}  {:>12}  {:5.1}%  {}\n",
                format_micros(*us),
                frac * 100.0,
                "#".repeat(bar_len),
            ));
        }
        if total > 0 {
            out.push_str(&format!(
                "  {:widest$}  {:>12}\n",
                "total",
                format_micros(total)
            ));
        }

        out.push_str("\ncommunication matrix (src -> dst):\n");
        if self.comm.is_empty() {
            out.push_str("  (no point-to-point messages recorded)\n");
        } else {
            out.push_str("  src  dst    tag        msgs        bytes\n");
            for c in &self.comm {
                out.push_str(&format!(
                    "  {:>3}  {:>3}  {:>5}  {:>10}  {:>11}\n",
                    c.src, c.dst, c.tag, c.msgs_sent, c.bytes_sent
                ));
            }
            let imbalances = self.comm_imbalances();
            if imbalances.is_empty() {
                out.push_str(&format!(
                    "  {} messages, {} bytes; sent == received for every (src, dst, tag)\n",
                    self.comm.iter().map(|c| c.msgs_sent).sum::<u64>(),
                    self.total_bytes_sent(),
                ));
            } else {
                out.push_str(&format!(
                    "  WARNING: {} matrix cells have sent != received\n",
                    imbalances.len()
                ));
            }
        }

        out.push_str("\nstorage operations:\n");
        if self.storage.is_empty() {
            out.push_str("  (none recorded)\n");
        } else {
            // Summarize per op kind; individual records stay in the JSON.
            let mut by_op: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
            for s in &self.storage {
                let e = by_op.entry(&s.op).or_default();
                e.0 += 1;
                e.1 += s.bytes;
                e.2 += s.micros;
            }
            for (op, (count, bytes, micros)) in by_op {
                out.push_str(&format!(
                    "  {op:<12} {count:>6} ops  {bytes:>12} bytes  {}\n",
                    format_micros(micros)
                ));
            }
        }
        out
    }
}

fn format_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample_report() -> JobReport {
        let t = Trace::collecting();
        t.phase(0, "aggregation", Duration::from_millis(10));
        t.phase(0, "file_io", Duration::from_millis(30));
        t.phase(1, "aggregation", Duration::from_millis(25));
        t.phase(1, "aggregation", Duration::from_millis(5)); // accumulates
        t.message(1, 0, 2, 512, Dir::Sent);
        t.message(1, 0, 2, 512, Dir::Received);
        t.message(0, 0, 2, 64, Dir::Sent);
        t.storage_op(
            0,
            "write_file",
            "file_0.spd",
            4096,
            Duration::from_millis(2),
        );
        JobReport::from_events(2, &t.events())
    }

    #[test]
    fn phases_accumulate_and_max() {
        let r = sample_report();
        assert_eq!(r.phase_max("aggregation"), Duration::from_millis(30));
        assert_eq!(r.phase_max("file_io"), Duration::from_millis(30));
        assert_eq!(r.phase_sum("aggregation"), Duration::from_millis(40));
        assert_eq!(r.phase_max("absent"), Duration::ZERO);
    }

    #[test]
    fn comm_matrix_tracks_both_sides() {
        let r = sample_report();
        let cell = r
            .comm
            .iter()
            .find(|c| c.src == 1 && c.dst == 0 && c.tag == 2)
            .unwrap();
        assert_eq!(cell.msgs_sent, 1);
        assert_eq!(cell.bytes_received, 512);
        // The (0,0,2) message was sent but never received.
        assert_eq!(r.comm_imbalances().len(), 1);
        assert_eq!(r.total_bytes_sent(), 576);
    }

    #[test]
    fn storage_op_and_retry_counts() {
        let t = Trace::collecting();
        t.storage_op(0, "read_file", "f", 10, Duration::from_micros(5));
        t.storage_op(0, "retry", "f", 1, Duration::from_micros(9));
        t.storage_op(1, "retry", "f", 1, Duration::from_micros(4));
        let r = JobReport::from_events(2, &t.events());
        assert_eq!(r.storage_op_count("read_file"), 1);
        assert_eq!(r.retry_count(), 2);
        assert!(
            r.render().contains("retry"),
            "retries show in `spio report`"
        );
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample_report();
        let text = r.to_json();
        let back = JobReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_non_reports() {
        assert!(JobReport::from_json("{}").is_err());
        assert!(JobReport::from_json("not json").is_err());
        assert!(JobReport::from_json("{\"format\":\"other\"}").is_err());
    }

    #[test]
    fn render_mentions_phases_and_matrix() {
        let text = sample_report().render();
        assert!(text.contains("aggregation"));
        assert!(text.contains("file_io"));
        assert!(text.contains("communication matrix"));
        assert!(text.contains("write_file"));
        assert!(text.contains("WARNING"), "imbalance must be called out");
    }

    #[test]
    fn empty_report_renders() {
        let r = JobReport::from_events(4, &[]);
        let text = r.render();
        assert!(text.contains("4 ranks"));
        assert!(text.contains("no point-to-point"));
    }
}
