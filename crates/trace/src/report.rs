//! Merging trace events into a serializable job report.
//!
//! [`JobReport`] is the analysis layer over a [`TraceSnapshot`]: phase
//! accumulation per rank, the communication matrix, Darshan-style storage
//! records (with file names interned through the report's string table),
//! plus the derived Fig. 6 diagnostics — per-op latency percentiles,
//! per-phase max/mean imbalance (the straggler axis), per-rank written-byte
//! skew (the aggregator axis), and the injected-vs-organic fault ledger.

use crate::shard::TraceSnapshot;
use crate::{Dir, TraceEvent};
use spio_util::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulated time one rank spent in one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    pub rank: usize,
    pub phase: String,
    pub micros: u64,
}

/// One cell of the communication matrix: all messages from `src` to `dst`
/// with `tag`, with both sides of the ledger so imbalances (messages posted
/// but never received) are visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEntry {
    pub src: usize,
    pub dst: usize,
    pub tag: u32,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub bytes_received: u64,
}

/// A Darshan-style storage-operation record. `file` indexes the report's
/// string table ([`JobReport::files`]); resolve with
/// [`JobReport::file_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageTotal {
    pub rank: usize,
    pub op: String,
    pub file: u32,
    pub bytes: u64,
    pub micros: u64,
}

/// Latency distribution of one storage-op kind, exact nearest-rank
/// percentiles over the individual records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    pub op: String,
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Straggler diagnostic for one phase: the slowest rank's accumulated time
/// vs. the mean over ranks that recorded the phase. `max/mean == 1` is
/// perfectly balanced; the paper's Fig. 6 bulk-synchronous model means the
/// job pays `max`, so the gap to `mean` is pure straggler cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImbalanceRow {
    pub phase: String,
    pub max_us: u64,
    pub mean_us: u64,
}

impl ImbalanceRow {
    /// `max / mean` (1.0 for an empty or perfectly balanced phase).
    pub fn ratio(&self) -> f64 {
        if self.mean_us == 0 {
            1.0
        } else {
            self.max_us as f64 / self.mean_us as f64
        }
    }
}

/// Bytes written to storage by one rank — the per-aggregator skew axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggBytes {
    pub rank: usize,
    pub bytes: u64,
}

/// Fault counts for one fault kind, split injected (chaos) vs. organic
/// (real backend errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTotal {
    pub kind: String,
    pub injected: u64,
    pub organic: u64,
}

/// Verifier findings aggregated per rule ("collective-mismatch",
/// "handle-leak", "stall", …). Any nonzero count means the job violated an
/// MPI-semantics invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyTotal {
    pub rule: String,
    pub count: u64,
}

/// One registry instrument flattened into a report row. Counters and
/// gauges carry `value`; histograms carry `value` (the sum) plus count and
/// percentiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricRow {
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter total, gauge level, or histogram sum.
    pub value: i64,
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Everything a traced job produced, merged and ready to serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobReport {
    pub nprocs: usize,
    /// String table resolving [`StorageTotal::file`] ids.
    pub files: Vec<String>,
    pub phases: Vec<PhaseTotal>,
    pub comm: Vec<CommEntry>,
    pub storage: Vec<StorageTotal>,
    pub faults: Vec<FaultTotal>,
    /// Verifier findings per rule, sorted by rule name; empty for a clean
    /// (or unverified) job.
    pub verify: Vec<VerifyTotal>,
    /// Per-op latency percentiles, sorted by op name.
    pub op_latency: Vec<OpLatency>,
    /// Per-phase max/mean straggler table, sorted by phase name.
    pub imbalance: Vec<ImbalanceRow>,
    /// Bytes written per rank (write ops only), sorted by rank.
    pub agg_bytes: Vec<AggBytes>,
    /// Registry instruments captured at report time (see
    /// [`JobReport::with_metrics`]); empty when the job carried none.
    pub metrics: Vec<MetricRow>,
}

impl JobReport {
    /// Merge a snapshot into a report. Phase spans accumulate per
    /// `(rank, phase)`; messages accumulate per `(src, dst, tag)`; storage
    /// ops are kept as individual records in arrival order; faults
    /// accumulate per `(kind, injected)`. Derived tables (latency
    /// percentiles, imbalance, per-rank write bytes) are computed here so
    /// serialized reports carry them verbatim.
    pub fn from_snapshot(nprocs: usize, snapshot: &TraceSnapshot) -> JobReport {
        Self::from_events(nprocs, &snapshot.events, &snapshot.files)
    }

    /// Like [`JobReport::from_snapshot`], from the parts. `files` is the
    /// string table that storage-op and fault `file` ids index.
    pub fn from_events(nprocs: usize, events: &[TraceEvent], files: &[String]) -> JobReport {
        let mut phases: BTreeMap<(usize, &str), u64> = BTreeMap::new();
        let mut comm: BTreeMap<(usize, usize, u32), [u64; 4]> = BTreeMap::new();
        let mut faults: BTreeMap<&str, [u64; 2]> = BTreeMap::new();
        let mut verify: BTreeMap<&str, u64> = BTreeMap::new();
        let mut storage = Vec::new();
        for ev in events {
            match ev {
                TraceEvent::Phase {
                    rank, phase, dur, ..
                } => {
                    *phases.entry((*rank, phase)).or_default() += dur.as_micros() as u64;
                }
                TraceEvent::Message {
                    src,
                    dst,
                    tag,
                    bytes,
                    dir,
                    ..
                } => {
                    let cell = comm.entry((*src, *dst, *tag)).or_default();
                    match dir {
                        Dir::Sent => {
                            cell[0] += 1;
                            cell[1] += *bytes;
                        }
                        Dir::Received => {
                            cell[2] += 1;
                            cell[3] += *bytes;
                        }
                    }
                }
                TraceEvent::StorageOp {
                    rank,
                    op,
                    file,
                    bytes,
                    dur,
                    ..
                } => {
                    storage.push(StorageTotal {
                        rank: *rank,
                        op: op.to_string(),
                        file: *file,
                        bytes: *bytes,
                        micros: dur.as_micros() as u64,
                    });
                }
                TraceEvent::Fault { kind, injected, .. } => {
                    let cell = faults.entry(kind).or_default();
                    cell[if *injected { 0 } else { 1 }] += 1;
                }
                TraceEvent::Verify { rule, .. } => {
                    *verify.entry(rule).or_default() += 1;
                }
            }
        }
        let mut report = JobReport {
            nprocs,
            files: files.to_vec(),
            phases: phases
                .into_iter()
                .map(|((rank, phase), micros)| PhaseTotal {
                    rank,
                    phase: phase.to_string(),
                    micros,
                })
                .collect(),
            comm: comm
                .into_iter()
                .map(|((src, dst, tag), c)| CommEntry {
                    src,
                    dst,
                    tag,
                    msgs_sent: c[0],
                    bytes_sent: c[1],
                    msgs_received: c[2],
                    bytes_received: c[3],
                })
                .collect(),
            storage,
            faults: faults
                .into_iter()
                .map(|(kind, c)| FaultTotal {
                    kind: kind.to_string(),
                    injected: c[0],
                    organic: c[1],
                })
                .collect(),
            verify: verify
                .into_iter()
                .map(|(rule, count)| VerifyTotal {
                    rule: rule.to_string(),
                    count,
                })
                .collect(),
            ..Default::default()
        };
        report.op_latency = report.compute_op_latency();
        report.imbalance = report.compute_imbalance();
        report.agg_bytes = report.compute_agg_bytes();
        report
    }

    /// Exact nearest-rank percentiles over each op kind's recorded
    /// latencies.
    fn compute_op_latency(&self) -> Vec<OpLatency> {
        let mut by_op: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for s in &self.storage {
            by_op.entry(&s.op).or_default().push(s.micros);
        }
        by_op
            .into_iter()
            .map(|(op, mut lats)| {
                lats.sort_unstable();
                let nearest = |p: f64| -> u64 {
                    let rank = ((p * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
                    lats[rank - 1]
                };
                OpLatency {
                    op: op.to_string(),
                    count: lats.len() as u64,
                    p50_us: nearest(0.50),
                    p95_us: nearest(0.95),
                    p99_us: nearest(0.99),
                    max_us: *lats.last().unwrap(),
                }
            })
            .collect()
    }

    /// Per-phase max and mean accumulated time. The mean is over ranks
    /// that recorded the phase at all (a phase only two ranks enter should
    /// not look imbalanced because the other ranks skipped it).
    fn compute_imbalance(&self) -> Vec<ImbalanceRow> {
        let mut by_phase: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new(); // max, sum, n
        for p in &self.phases {
            let cell = by_phase.entry(&p.phase).or_default();
            cell.0 = cell.0.max(p.micros);
            cell.1 += p.micros;
            cell.2 += 1;
        }
        by_phase
            .into_iter()
            .map(|(phase, (max, sum, n))| ImbalanceRow {
                phase: phase.to_string(),
                max_us: max,
                mean_us: sum.checked_div(n).unwrap_or(0),
            })
            .collect()
    }

    /// Bytes written per rank (`write_file` + `write_range` ops).
    fn compute_agg_bytes(&self) -> Vec<AggBytes> {
        let mut by_rank: BTreeMap<usize, u64> = BTreeMap::new();
        for s in &self.storage {
            if s.op.starts_with("write") {
                *by_rank.entry(s.rank).or_default() += s.bytes;
            }
        }
        by_rank
            .into_iter()
            .map(|(rank, bytes)| AggBytes { rank, bytes })
            .collect()
    }

    /// Embed a snapshot of a metrics registry (cache hit rates, in-flight
    /// gauges, latency histograms) so `spio report` shows them alongside
    /// the event-derived tables.
    pub fn with_metrics(mut self, metrics: &crate::Metrics) -> Self {
        self.metrics = metrics.export_rows();
        self
    }

    /// The embedded registry row named `name`, if any.
    pub fn metric(&self, name: &str) -> Option<&MetricRow> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Resolve a storage record's file id to its name.
    pub fn file_name(&self, id: u32) -> String {
        self.files
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("file#{id}"))
    }

    /// Maximum time any rank spent in `phase` — the bulk-synchronous bound
    /// `WriteStats::merge_max` also computes, which is what the fig6
    /// cross-check compares against.
    pub fn phase_max(&self, phase: &str) -> Duration {
        Duration::from_micros(
            self.phases
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.micros)
                .max()
                .unwrap_or(0),
        )
    }

    /// Sum of a phase's time across ranks.
    pub fn phase_sum(&self, phase: &str) -> Duration {
        Duration::from_micros(
            self.phases
                .iter()
                .filter(|p| p.phase == phase)
                .map(|p| p.micros)
                .sum(),
        )
    }

    /// Sorted distinct phase names.
    pub fn phase_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.phases.iter().map(|p| p.phase.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The straggler ratio `max/mean` for `phase` (1.0 when unrecorded).
    pub fn imbalance_ratio(&self, phase: &str) -> f64 {
        self.imbalance
            .iter()
            .find(|r| r.phase == phase)
            .map_or(1.0, ImbalanceRow::ratio)
    }

    /// Latency percentiles for one op kind.
    pub fn op_latency(&self, op: &str) -> Option<&OpLatency> {
        self.op_latency.iter().find(|l| l.op == op)
    }

    /// Matrix cells where the sent and received ledgers disagree (messages
    /// posted but never received, or bytes corrupted in flight). Empty for
    /// a conservation-respecting job.
    pub fn comm_imbalances(&self) -> Vec<&CommEntry> {
        self.comm
            .iter()
            .filter(|c| c.msgs_sent != c.msgs_received || c.bytes_sent != c.bytes_received)
            .collect()
    }

    /// Total payload bytes sent (each message counted once).
    pub fn total_bytes_sent(&self) -> u64 {
        self.comm.iter().map(|c| c.bytes_sent).sum()
    }

    /// Total bytes moved through storage by `op`.
    pub fn storage_bytes(&self, op: &str) -> u64 {
        self.storage
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.bytes)
            .sum()
    }

    /// Number of recorded storage operations of `op` kind.
    pub fn storage_op_count(&self, op: &str) -> usize {
        self.storage.iter().filter(|s| s.op == op).count()
    }

    /// Storage retries recorded by `RetryStorage` wrappers — nonzero means
    /// the job survived transient storage faults.
    pub fn retry_count(&self) -> usize {
        self.storage_op_count("retry")
    }

    /// Total chaos-injected fault events.
    pub fn injected_fault_count(&self) -> u64 {
        self.faults.iter().map(|f| f.injected).sum()
    }

    /// Total organic (non-injected) fault events.
    pub fn organic_fault_count(&self) -> u64 {
        self.faults.iter().map(|f| f.organic).sum()
    }

    // ---- serialization ----

    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("rank".into(), Json::u64(p.rank as u64)),
                    ("phase".into(), Json::str(&p.phase)),
                    ("micros".into(), Json::u64(p.micros)),
                ])
            })
            .collect();
        let comm = self
            .comm
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("src".into(), Json::u64(c.src as u64)),
                    ("dst".into(), Json::u64(c.dst as u64)),
                    ("tag".into(), Json::u64(c.tag as u64)),
                    ("msgs_sent".into(), Json::u64(c.msgs_sent)),
                    ("bytes_sent".into(), Json::u64(c.bytes_sent)),
                    ("msgs_received".into(), Json::u64(c.msgs_received)),
                    ("bytes_received".into(), Json::u64(c.bytes_received)),
                ])
            })
            .collect();
        let storage = self
            .storage
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("rank".into(), Json::u64(s.rank as u64)),
                    ("op".into(), Json::str(&s.op)),
                    ("file".into(), Json::u64(s.file as u64)),
                    ("bytes".into(), Json::u64(s.bytes)),
                    ("micros".into(), Json::u64(s.micros)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("kind".into(), Json::str(&f.kind)),
                    ("injected".into(), Json::u64(f.injected)),
                    ("organic".into(), Json::u64(f.organic)),
                ])
            })
            .collect();
        let verify = self
            .verify
            .iter()
            .map(|v| {
                Json::Obj(vec![
                    ("rule".into(), Json::str(&v.rule)),
                    ("count".into(), Json::u64(v.count)),
                ])
            })
            .collect();
        let op_latency = self
            .op_latency
            .iter()
            .map(|l| {
                Json::Obj(vec![
                    ("op".into(), Json::str(&l.op)),
                    ("count".into(), Json::u64(l.count)),
                    ("p50_us".into(), Json::u64(l.p50_us)),
                    ("p95_us".into(), Json::u64(l.p95_us)),
                    ("p99_us".into(), Json::u64(l.p99_us)),
                    ("max_us".into(), Json::u64(l.max_us)),
                ])
            })
            .collect();
        let imbalance = self
            .imbalance
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("phase".into(), Json::str(&r.phase)),
                    ("max_us".into(), Json::u64(r.max_us)),
                    ("mean_us".into(), Json::u64(r.mean_us)),
                ])
            })
            .collect();
        let agg_bytes = self
            .agg_bytes
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("rank".into(), Json::u64(a.rank as u64)),
                    ("bytes".into(), Json::u64(a.bytes)),
                ])
            })
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&m.name)),
                    ("kind".into(), Json::str(&m.kind)),
                    ("value".into(), Json::Num(m.value as f64)),
                    ("count".into(), Json::u64(m.count)),
                    ("p50".into(), Json::u64(m.p50)),
                    ("p95".into(), Json::u64(m.p95)),
                    ("p99".into(), Json::u64(m.p99)),
                    ("max".into(), Json::u64(m.max)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::str("spio-job-report")),
            ("version".into(), Json::u64(2)),
            ("nprocs".into(), Json::u64(self.nprocs as u64)),
            (
                "files".into(),
                Json::Arr(self.files.iter().map(Json::str).collect()),
            ),
            ("phases".into(), Json::Arr(phases)),
            ("comm".into(), Json::Arr(comm)),
            ("storage".into(), Json::Arr(storage)),
            ("faults".into(), Json::Arr(faults)),
            ("verify".into(), Json::Arr(verify)),
            ("op_latency".into(), Json::Arr(op_latency)),
            ("imbalance".into(), Json::Arr(imbalance)),
            ("agg_bytes".into(), Json::Arr(agg_bytes)),
            ("metrics".into(), Json::Arr(metrics)),
        ])
        .to_string()
    }

    pub fn from_json(text: &str) -> Result<JobReport, String> {
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("spio-job-report") {
            return Err("not a spio job report".into());
        }
        let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != 1 && version != 2 {
            return Err(format!("unsupported job-report version {version}"));
        }
        let field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let text_field = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let arr = |key: &str| -> Result<&[Json], String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing array '{key}'"))
        };
        // Optional arrays absent in version-1 documents.
        let opt_arr = |key: &str| -> &[Json] { doc.get(key).and_then(Json::as_arr).unwrap_or(&[]) };
        let mut report = JobReport {
            nprocs: field(&doc, "nprocs")? as usize,
            ..Default::default()
        };
        for f in opt_arr("files") {
            report
                .files
                .push(f.as_str().ok_or("non-string file name")?.to_string());
        }
        for p in arr("phases")? {
            report.phases.push(PhaseTotal {
                rank: field(p, "rank")? as usize,
                phase: text_field(p, "phase")?,
                micros: field(p, "micros")?,
            });
        }
        for c in arr("comm")? {
            report.comm.push(CommEntry {
                src: field(c, "src")? as usize,
                dst: field(c, "dst")? as usize,
                tag: field(c, "tag")? as u32,
                msgs_sent: field(c, "msgs_sent")?,
                bytes_sent: field(c, "bytes_sent")?,
                msgs_received: field(c, "msgs_received")?,
                bytes_received: field(c, "bytes_received")?,
            });
        }
        for s in arr("storage")? {
            // Version 1 stored the file name inline; intern it into the
            // report's table so both versions land in the same shape.
            let file = match s.get("file") {
                Some(Json::Str(name)) => match report.files.iter().position(|f| f == name) {
                    Some(i) => i as u32,
                    None => {
                        report.files.push(name.clone());
                        (report.files.len() - 1) as u32
                    }
                },
                _ => field(s, "file")? as u32,
            };
            report.storage.push(StorageTotal {
                rank: field(s, "rank")? as usize,
                op: text_field(s, "op")?,
                file,
                bytes: field(s, "bytes")?,
                micros: field(s, "micros")?,
            });
        }
        for f in opt_arr("faults") {
            report.faults.push(FaultTotal {
                kind: text_field(f, "kind")?,
                injected: field(f, "injected")?,
                organic: field(f, "organic")?,
            });
        }
        // Optional: reports from before the verification layer omit it.
        for v in opt_arr("verify") {
            report.verify.push(VerifyTotal {
                rule: text_field(v, "rule")?,
                count: field(v, "count")?,
            });
        }
        for l in opt_arr("op_latency") {
            report.op_latency.push(OpLatency {
                op: text_field(l, "op")?,
                count: field(l, "count")?,
                p50_us: field(l, "p50_us")?,
                p95_us: field(l, "p95_us")?,
                p99_us: field(l, "p99_us")?,
                max_us: field(l, "max_us")?,
            });
        }
        for r in opt_arr("imbalance") {
            report.imbalance.push(ImbalanceRow {
                phase: text_field(r, "phase")?,
                max_us: field(r, "max_us")?,
                mean_us: field(r, "mean_us")?,
            });
        }
        for a in opt_arr("agg_bytes") {
            report.agg_bytes.push(AggBytes {
                rank: field(a, "rank")? as usize,
                bytes: field(a, "bytes")?,
            });
        }
        // Optional in both versions: reports without a registry omit it.
        for m in opt_arr("metrics") {
            report.metrics.push(MetricRow {
                name: text_field(m, "name")?,
                kind: text_field(m, "kind")?,
                value: m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("missing numeric field 'value'")? as i64,
                count: field(m, "count")?,
                p50: field(m, "p50")?,
                p95: field(m, "p95")?,
                p99: field(m, "p99")?,
                max: field(m, "max")?,
            });
        }
        if version == 1 {
            // Version-1 documents predate the derived tables.
            report.op_latency = report.compute_op_latency();
            report.imbalance = report.compute_imbalance();
            report.agg_bytes = report.compute_agg_bytes();
        }
        Ok(report)
    }

    // ---- rendering (the `spio report` subcommand) ----

    /// Human-readable rendering: Fig. 6-style phase breakdown (max across
    /// ranks, proportional bars), the straggler/imbalance table, the
    /// communication matrix, storage-op summary with latency percentiles,
    /// per-rank written-byte skew, and the fault ledger.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("job report — {} ranks\n\n", self.nprocs));

        out.push_str("phase breakdown (max across ranks):\n");
        let names = self.phase_names();
        let maxima: Vec<(String, u64)> = names
            .iter()
            .map(|n| (n.to_string(), self.phase_max(n).as_micros() as u64))
            .collect();
        let total: u64 = maxima.iter().map(|(_, us)| us).sum();
        let widest = maxima.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, us) in &maxima {
            let frac = if total > 0 {
                *us as f64 / total as f64
            } else {
                0.0
            };
            let bar_len = (frac * 40.0).round() as usize;
            out.push_str(&format!(
                "  {name:widest$}  {:>12}  {:5.1}%  {}\n",
                format_micros(*us),
                frac * 100.0,
                "#".repeat(bar_len),
            ));
        }
        if total > 0 {
            out.push_str(&format!(
                "  {:widest$}  {:>12}\n",
                "total",
                format_micros(total)
            ));
        }

        if !self.imbalance.is_empty() {
            out.push_str("\nphase imbalance (straggler cost = max/mean across ranks):\n");
            out.push_str(&format!(
                "  {:widest$}  {:>12}  {:>12}  {:>7}\n",
                "phase", "max", "mean", "ratio"
            ));
            for row in &self.imbalance {
                out.push_str(&format!(
                    "  {:widest$}  {:>12}  {:>12}  {:>6.2}x\n",
                    row.phase,
                    format_micros(row.max_us),
                    format_micros(row.mean_us),
                    row.ratio(),
                ));
            }
        }

        out.push_str("\ncommunication matrix (src -> dst):\n");
        if self.comm.is_empty() {
            out.push_str("  (no point-to-point messages recorded)\n");
        } else {
            out.push_str("  src  dst    tag        msgs        bytes\n");
            for c in &self.comm {
                out.push_str(&format!(
                    "  {:>3}  {:>3}  {:>5}  {:>10}  {:>11}\n",
                    c.src, c.dst, c.tag, c.msgs_sent, c.bytes_sent
                ));
            }
            let imbalances = self.comm_imbalances();
            if imbalances.is_empty() {
                out.push_str(&format!(
                    "  {} messages, {} bytes; sent == received for every (src, dst, tag)\n",
                    self.comm.iter().map(|c| c.msgs_sent).sum::<u64>(),
                    self.total_bytes_sent(),
                ));
            } else {
                out.push_str(&format!(
                    "  WARNING: {} matrix cells have sent != received\n",
                    imbalances.len()
                ));
            }
        }

        out.push_str("\nstorage operations:\n");
        if self.storage.is_empty() {
            out.push_str("  (none recorded)\n");
        } else {
            // Summarize per op kind; individual records stay in the JSON.
            let mut by_op: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
            for s in &self.storage {
                let e = by_op.entry(&s.op).or_default();
                e.0 += 1;
                e.1 += s.bytes;
                e.2 += s.micros;
            }
            for (op, (count, bytes, micros)) in by_op {
                out.push_str(&format!(
                    "  {op:<12} {count:>6} ops  {bytes:>12} bytes  {}\n",
                    format_micros(micros)
                ));
            }
        }

        if !self.op_latency.is_empty() {
            out.push_str("\nstorage latency percentiles (µs):\n");
            out.push_str("  op             count      p50      p95      p99      max\n");
            for l in &self.op_latency {
                out.push_str(&format!(
                    "  {:<12} {:>7}  {:>7}  {:>7}  {:>7}  {:>7}\n",
                    l.op, l.count, l.p50_us, l.p95_us, l.p99_us, l.max_us
                ));
            }
        }

        if !self.agg_bytes.is_empty() {
            let max = self.agg_bytes.iter().map(|a| a.bytes).max().unwrap_or(0);
            let sum: u64 = self.agg_bytes.iter().map(|a| a.bytes).sum();
            let mean = sum / self.agg_bytes.len() as u64;
            out.push_str(&format!(
                "\naggregator byte skew: {} writing ranks, max {} bytes, mean {} bytes ({:.2}x)\n",
                self.agg_bytes.len(),
                max,
                mean,
                if mean > 0 {
                    max as f64 / mean as f64
                } else {
                    1.0
                },
            ));
        }

        if !self.metrics.is_empty() {
            out.push_str("\nmetrics registry:\n");
            out.push_str(
                "  name                          kind          value    count      p50      p95      p99      max\n",
            );
            for m in &self.metrics {
                if m.kind == "histogram" {
                    out.push_str(&format!(
                        "  {:<28}  {:<9} {:>9}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}\n",
                        m.name, m.kind, m.value, m.count, m.p50, m.p95, m.p99, m.max
                    ));
                } else {
                    out.push_str(&format!("  {:<28}  {:<9} {:>9}\n", m.name, m.kind, m.value));
                }
            }
        }

        if !self.faults.is_empty() {
            out.push_str("\nfaults (injected vs organic):\n");
            out.push_str("  kind              injected   organic\n");
            for f in &self.faults {
                out.push_str(&format!(
                    "  {:<16} {:>9}  {:>8}\n",
                    f.kind, f.injected, f.organic
                ));
            }
        }

        if !self.verify.is_empty() {
            out.push_str("\nverifier findings (MPI-semantics violations):\n");
            out.push_str("  rule                        count\n");
            for v in &self.verify {
                out.push_str(&format!("  {:<26} {:>6}\n", v.rule, v.count));
            }
        }
        out
    }
}

fn format_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample_report() -> JobReport {
        let t = Trace::collecting();
        t.phase(0, "aggregation", Duration::from_millis(10));
        t.phase(0, "file_io", Duration::from_millis(30));
        t.phase(1, "aggregation", Duration::from_millis(25));
        t.phase(1, "aggregation", Duration::from_millis(5)); // accumulates
        t.message(1, 0, 2, 512, Dir::Sent);
        t.message(1, 0, 2, 512, Dir::Received);
        t.message(0, 0, 2, 64, Dir::Sent);
        t.storage_op(
            0,
            "write_file",
            "file_0.spd",
            4096,
            Duration::from_millis(2),
        );
        t.fault(0, "transient", "file_0.spd", true);
        t.fault(1, "io_error", "file_0.spd", false);
        JobReport::from_snapshot(2, &t.snapshot())
    }

    #[test]
    fn phases_accumulate_and_max() {
        let r = sample_report();
        assert_eq!(r.phase_max("aggregation"), Duration::from_millis(30));
        assert_eq!(r.phase_max("file_io"), Duration::from_millis(30));
        assert_eq!(r.phase_sum("aggregation"), Duration::from_millis(40));
        assert_eq!(r.phase_max("absent"), Duration::ZERO);
    }

    #[test]
    fn comm_matrix_tracks_both_sides() {
        let r = sample_report();
        let cell = r
            .comm
            .iter()
            .find(|c| c.src == 1 && c.dst == 0 && c.tag == 2)
            .unwrap();
        assert_eq!(cell.msgs_sent, 1);
        assert_eq!(cell.bytes_received, 512);
        // The (0,0,2) message was sent but never received.
        assert_eq!(r.comm_imbalances().len(), 1);
        assert_eq!(r.total_bytes_sent(), 576);
    }

    #[test]
    fn storage_op_and_retry_counts() {
        let t = Trace::collecting();
        t.storage_op(0, "read_file", "f", 10, Duration::from_micros(5));
        t.storage_op(0, "retry", "f", 1, Duration::from_micros(9));
        t.storage_op(1, "retry", "f", 1, Duration::from_micros(4));
        let r = JobReport::from_snapshot(2, &t.snapshot());
        assert_eq!(r.storage_op_count("read_file"), 1);
        assert_eq!(r.retry_count(), 2);
        assert!(
            r.render().contains("retry"),
            "retries show in `spio report`"
        );
    }

    #[test]
    fn op_latency_percentiles_are_exact_nearest_rank() {
        let t = Trace::collecting();
        for us in 1..=100u64 {
            t.storage_op(0, "read_range", "f", 8, Duration::from_micros(us));
        }
        let r = JobReport::from_snapshot(1, &t.snapshot());
        let l = r.op_latency("read_range").unwrap();
        assert_eq!(l.count, 100);
        assert_eq!(l.p50_us, 50);
        assert_eq!(l.p95_us, 95);
        assert_eq!(l.p99_us, 99);
        assert_eq!(l.max_us, 100);
        assert!(r.op_latency("absent").is_none());
    }

    #[test]
    fn imbalance_ratio_flags_stragglers() {
        let t = Trace::collecting();
        t.phase(0, "file_io", Duration::from_millis(10));
        t.phase(1, "file_io", Duration::from_millis(10));
        t.phase(2, "file_io", Duration::from_millis(40));
        // A phase only one rank enters is perfectly "balanced".
        t.phase(0, "meta", Duration::from_millis(3));
        let r = JobReport::from_snapshot(3, &t.snapshot());
        let row = r.imbalance.iter().find(|i| i.phase == "file_io").unwrap();
        assert_eq!(row.max_us, 40_000);
        assert_eq!(row.mean_us, 20_000);
        assert!((r.imbalance_ratio("file_io") - 2.0).abs() < 1e-9);
        assert!((r.imbalance_ratio("meta") - 1.0).abs() < 1e-9);
        assert!((r.imbalance_ratio("absent") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn agg_bytes_tracks_writes_per_rank() {
        let t = Trace::collecting();
        t.storage_op(0, "write_file", "a", 100, Duration::ZERO);
        t.storage_op(0, "write_range", "a", 50, Duration::ZERO);
        t.storage_op(2, "write_file", "b", 300, Duration::ZERO);
        t.storage_op(1, "read_file", "a", 999, Duration::ZERO); // not a write
        let r = JobReport::from_snapshot(3, &t.snapshot());
        assert_eq!(
            r.agg_bytes,
            vec![
                AggBytes {
                    rank: 0,
                    bytes: 150
                },
                AggBytes {
                    rank: 2,
                    bytes: 300
                },
            ]
        );
    }

    #[test]
    fn fault_ledger_splits_injected_and_organic() {
        let r = sample_report();
        assert_eq!(r.injected_fault_count(), 1);
        assert_eq!(r.organic_fault_count(), 1);
        let transient = r.faults.iter().find(|f| f.kind == "transient").unwrap();
        assert_eq!((transient.injected, transient.organic), (1, 0));
        assert!(r.render().contains("injected"));
    }

    #[test]
    fn verify_findings_aggregate_by_rule_and_render() {
        let t = Trace::collecting();
        t.verify_finding(
            0,
            "collective-mismatch",
            "rank 0: barrier vs allgather".into(),
        );
        t.verify_finding(
            2,
            "collective-mismatch",
            "rank 2: barrier vs allgather".into(),
        );
        t.verify_finding(1, "handle-leak", "1 unwaited recv handle".into());
        let r = JobReport::from_snapshot(3, &t.snapshot());
        assert_eq!(
            r.verify,
            vec![
                VerifyTotal {
                    rule: "collective-mismatch".into(),
                    count: 2
                },
                VerifyTotal {
                    rule: "handle-leak".into(),
                    count: 1
                },
            ]
        );
        let text = r.render();
        assert!(text.contains("verifier findings"));
        assert!(text.contains("collective-mismatch"));
        let back = JobReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // Clean jobs skip the section.
        assert!(!sample_report().render().contains("verifier findings"));
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample_report();
        let text = r.to_json();
        let back = JobReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn metrics_embed_roundtrip_and_render() {
        let t = Trace::collecting();
        let m = t.metrics();
        m.counter("serve.cache.hits").add(7);
        m.gauge("serve.inflight").set(-2); // signed survives the roundtrip
        let h = m.histogram("serve.query.latency_us");
        h.record(10);
        h.record(1000);
        let r = JobReport::from_snapshot(1, &t.snapshot()).with_metrics(&m);
        assert_eq!(r.metric("serve.cache.hits").unwrap().value, 7);
        assert_eq!(r.metric("serve.inflight").unwrap().value, -2);
        let lat = r.metric("serve.query.latency_us").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 1000);
        assert!(lat.p50 <= lat.p99 && lat.p99 <= lat.max);
        let back = JobReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let text = r.render();
        assert!(text.contains("metrics registry"));
        assert!(text.contains("serve.cache.hits"));
        assert!(text.contains("serve.query.latency_us"));
        // Reports without metrics skip the section entirely.
        assert!(!sample_report().render().contains("metrics registry"));
    }

    #[test]
    fn from_json_accepts_version_1_documents() {
        // A hand-built v1 report: storage file names inline, no derived
        // tables. Parsing must intern the names and recompute.
        let v1 = r#"{
            "format": "spio-job-report", "version": 1, "nprocs": 2,
            "phases": [
                {"rank": 0, "phase": "file_io", "micros": 10},
                {"rank": 1, "phase": "file_io", "micros": 30}
            ],
            "comm": [],
            "storage": [
                {"rank": 0, "op": "write_file", "file": "a.spd", "bytes": 64, "micros": 7},
                {"rank": 1, "op": "write_file", "file": "a.spd", "bytes": 32, "micros": 9}
            ]
        }"#;
        let r = JobReport::from_json(v1).unwrap();
        assert_eq!(r.files, vec!["a.spd"]);
        assert_eq!(r.storage[0].file, 0);
        assert_eq!(r.storage[1].file, 0);
        assert_eq!(r.op_latency("write_file").unwrap().max_us, 9);
        assert_eq!(r.imbalance[0].max_us, 30);
        assert_eq!(r.agg_bytes.len(), 2);
    }

    #[test]
    fn from_json_rejects_non_reports() {
        assert!(JobReport::from_json("{}").is_err());
        assert!(JobReport::from_json("not json").is_err());
        assert!(JobReport::from_json("{\"format\":\"other\"}").is_err());
        assert!(JobReport::from_json("{\"format\":\"spio-job-report\",\"version\":99}").is_err());
    }

    #[test]
    fn render_mentions_phases_and_matrix() {
        let text = sample_report().render();
        assert!(text.contains("aggregation"));
        assert!(text.contains("file_io"));
        assert!(text.contains("communication matrix"));
        assert!(text.contains("write_file"));
        assert!(text.contains("WARNING"), "imbalance must be called out");
        assert!(text.contains("latency percentiles"));
        assert!(text.contains("phase imbalance"));
        assert!(text.contains("aggregator byte skew"));
    }

    #[test]
    fn empty_report_renders() {
        let r = JobReport::from_events(4, &[], &[]);
        let text = r.render();
        assert!(text.contains("4 ranks"));
        assert!(text.contains("no point-to-point"));
    }
}
