//! Timeline views: per-rank span lanes rendered as ASCII, and RAII span
//! guards for timestamped recording.
//!
//! The Chrome export ([`crate::chrome_trace`]) is the high-fidelity view;
//! this module is the terminal version — `spio trace snapshot.json` prints
//! one lane per rank with phase spans drawn to scale, which is enough to
//! spot a straggler or a serialized I/O phase without leaving the shell.

use crate::shard::TraceSnapshot;
use crate::{Trace, TraceEvent};
use std::collections::BTreeMap;
use std::time::Instant;

/// One span on a rank's lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
}

/// Per-rank lanes of phase and storage spans, extracted from a snapshot.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// rank → spans sorted by start time.
    pub lanes: BTreeMap<usize, Vec<Span>>,
    /// End of the last span, µs since the job epoch.
    pub end_us: u64,
}

impl Timeline {
    /// Build lanes from the spanful events (phases and storage ops;
    /// messages and faults are instants and stay off the lanes).
    pub fn from_snapshot(snapshot: &TraceSnapshot) -> Timeline {
        let mut lanes: BTreeMap<usize, Vec<Span>> = BTreeMap::new();
        for ev in &snapshot.events {
            let (rank, name, start_us, end_us) = match ev {
                TraceEvent::Phase {
                    rank,
                    phase,
                    start_us,
                    dur,
                } => (
                    *rank,
                    phase.to_string(),
                    *start_us,
                    start_us + dur.as_micros() as u64,
                ),
                TraceEvent::StorageOp {
                    rank,
                    op,
                    file,
                    start_us,
                    dur,
                    ..
                } => (
                    *rank,
                    format!("{op}({})", snapshot.file_name(*file)),
                    *start_us,
                    start_us + dur.as_micros() as u64,
                ),
                TraceEvent::Message { .. }
                | TraceEvent::Fault { .. }
                | TraceEvent::Verify { .. } => continue,
            };
            lanes.entry(rank).or_default().push(Span {
                name,
                start_us,
                end_us,
            });
        }
        let mut end_us = 0;
        for spans in lanes.values_mut() {
            spans.sort_by_key(|s| (s.start_us, s.end_us));
            end_us = end_us.max(spans.iter().map(|s| s.end_us).max().unwrap_or(0));
        }
        Timeline { lanes, end_us }
    }

    /// Draw the lanes `width` characters wide. Each distinct span name gets
    /// a letter code; overlapping spans on a lane overwrite left-to-right
    /// (later starts win), which matches how nested phase/op spans read.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        if self.lanes.is_empty() || self.end_us == 0 {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        // Stable letter codes in first-seen-per-sorted-lane order.
        let mut codes: BTreeMap<&str, char> = BTreeMap::new();
        let alphabet: Vec<char> = ('A'..='Z').chain('a'..='z').collect();
        for spans in self.lanes.values() {
            for s in spans {
                let next = alphabet[codes.len() % alphabet.len()];
                codes.entry(&s.name).or_insert(next);
            }
        }
        let scale = width as f64 / self.end_us as f64;
        for (rank, spans) in &self.lanes {
            let mut row = vec!['.'; width];
            for s in spans {
                let a = ((s.start_us as f64 * scale) as usize).min(width - 1);
                let b = ((s.end_us as f64 * scale).ceil() as usize).clamp(a + 1, width);
                let code = codes[s.name.as_str()];
                for cell in &mut row[a..b] {
                    *cell = code;
                }
            }
            out.push_str(&format!(
                "rank {rank:>4} |{}|\n",
                row.into_iter().collect::<String>()
            ));
        }
        out.push_str(&format!(
            "           0 {:>w$}\n",
            format!("{} µs", self.end_us),
            w = width.saturating_sub(1),
        ));
        out.push_str("legend: ");
        let mut first = true;
        for (name, code) in &codes {
            if !first {
                out.push_str(", ");
            }
            out.push_str(&format!("{code}={name}"));
            first = false;
        }
        out.push('\n');
        out
    }
}

/// RAII guard that records a timestamped phase span when dropped. Obtained
/// from [`Trace::span`]; when the trace is disabled the guard holds no
/// clock reading and drop is a no-op.
#[must_use = "the span records on drop; binding to _ ends it immediately"]
pub struct ScopedSpan {
    trace: Trace,
    rank: usize,
    phase: &'static str,
    t0: Option<Instant>,
}

impl ScopedSpan {
    pub(crate) fn new(trace: &Trace, rank: usize, phase: &'static str) -> ScopedSpan {
        ScopedSpan {
            t0: trace.is_enabled().then(Instant::now),
            trace: trace.clone(),
            rank,
            phase,
        }
    }
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            self.trace.phase(self.rank, self.phase, t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn snap() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                TraceEvent::Phase {
                    rank: 0,
                    phase: "aggregation",
                    start_us: 0,
                    dur: Duration::from_micros(50),
                },
                TraceEvent::Phase {
                    rank: 0,
                    phase: "file_io",
                    start_us: 50,
                    dur: Duration::from_micros(50),
                },
                TraceEvent::Phase {
                    rank: 1,
                    phase: "aggregation",
                    start_us: 0,
                    dur: Duration::from_micros(100),
                },
            ],
            files: vec![],
        }
    }

    #[test]
    fn lanes_are_per_rank_and_sorted() {
        let t = Timeline::from_snapshot(&snap());
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.end_us, 100);
        assert_eq!(t.lanes[&0].len(), 2);
        assert!(t.lanes[&0][0].start_us <= t.lanes[&0][1].start_us);
    }

    #[test]
    fn ascii_render_scales_spans() {
        let t = Timeline::from_snapshot(&snap());
        let text = t.render_ascii(40);
        assert!(text.contains("rank    0"));
        assert!(text.contains("rank    1"));
        assert!(text.contains("legend:"));
        assert!(text.contains("=aggregation"));
        // Rank 1 is a single span: its row must be one solid code.
        let row1 = text.lines().nth(1).unwrap();
        let bar: &str = row1.split('|').nth(1).unwrap();
        let c = bar.chars().next().unwrap();
        assert!(bar.chars().all(|x| x == c), "solid lane, got {bar:?}");
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let t = Timeline::from_snapshot(&TraceSnapshot::default());
        assert!(t.render_ascii(40).contains("no spans"));
    }

    #[test]
    fn scoped_span_records_on_drop() {
        let trace = Trace::collecting();
        {
            let _s = trace.span(3, "scoped");
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = trace.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            TraceEvent::Phase {
                rank, phase, dur, ..
            } => {
                assert_eq!(*rank, 3);
                assert_eq!(*phase, "scoped");
                assert!(*dur >= Duration::from_millis(1));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn scoped_span_on_disabled_trace_is_noop() {
        let trace = Trace::off();
        let s = trace.span(0, "nothing");
        assert!(s.t0.is_none());
        drop(s);
        assert!(trace.is_empty());
    }
}
