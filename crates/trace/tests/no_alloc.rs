//! The zero-cost guarantee: a disabled trace must not allocate, take a
//! lock, or read a clock. Allocation is the observable one — this test
//! installs a counting global allocator and drives every recording entry
//! point with the no-op sink.

use spio_trace::{Dir, Trace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_trace_never_allocates() {
    let trace = Trace::off();
    assert!(!trace.is_enabled());

    // Instrument handles resolved from a disabled registry are inert too.
    let metrics = trace.metrics();
    let counter = metrics.counter("storage.write_file.ops");
    let gauge = metrics.gauge("queue.depth");
    let histogram = metrics.histogram("storage.write_file.latency_us");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000usize {
        trace.phase(i % 8, "aggregation", Duration::from_micros(17));
        trace.message(i % 8, (i + 1) % 8, 2, 4096, Dir::Sent);
        trace.message(i % 8, (i + 1) % 8, 2, 4096, Dir::Received);
        trace.storage_op(
            i % 8,
            "write_file",
            "file_0.spd",
            1 << 20,
            Duration::from_micros(3),
        );
        trace.fault(i % 8, "transient", "file_0.spd", true);
        counter.inc();
        counter.add(i as u64);
        gauge.set(i as i64);
        gauge.add(-1);
        histogram.record(i as u64);
        histogram.record_duration(Duration::from_micros(3));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "no-op sink must be allocation-free");

    // Sanity: the counter does see allocations when recording is on.
    let collecting = Trace::collecting();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..64usize {
        collecting.phase(i, "aggregation", Duration::from_micros(17));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "collecting sink records (and allocates)");
    assert_eq!(collecting.len(), 64);
}
