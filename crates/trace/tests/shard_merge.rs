//! Sharded-buffer correctness: concurrent recording from many rank
//! threads must merge to exactly the event multiset a serial recorder
//! would produce — nothing lost, nothing duplicated, file ids resolving
//! to the right names. Timestamps differ between the two recordings
//! (they read real clocks), so events are compared by a canonical key
//! with times stripped.

use spio_trace::{Dir, Trace, TraceEvent, TraceSnapshot};
use std::collections::BTreeMap;
use std::time::Duration;

const RANKS: usize = 16;
const REPS: usize = 200;

/// Canonical, timestamp-free rendering of an event, with storage-op file
/// ids resolved through the snapshot's string table so recordings with
/// different interning orders still compare equal.
fn key(ev: &TraceEvent, snap: &TraceSnapshot) -> String {
    match ev {
        TraceEvent::Phase {
            rank, phase, dur, ..
        } => format!("phase r{rank} {phase} {}us", dur.as_micros()),
        TraceEvent::Message {
            src,
            dst,
            tag,
            bytes,
            dir,
            ..
        } => format!("msg {src}->{dst} tag{tag} {bytes}B {dir:?}"),
        TraceEvent::StorageOp {
            rank,
            op,
            file,
            bytes,
            dur,
            ..
        } => format!(
            "op r{rank} {op} {} {bytes}B {}us",
            snap.file_name(*file),
            dur.as_micros()
        ),
        TraceEvent::Fault {
            rank,
            kind,
            file,
            injected,
            ..
        } => format!(
            "fault r{rank} {kind} {} injected={injected}",
            snap.file_name(*file)
        ),
        TraceEvent::Verify {
            rank, rule, detail, ..
        } => format!("verify r{rank} {rule} {detail}"),
    }
}

fn multiset(snap: &TraceSnapshot) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for ev in &snap.events {
        *counts.entry(key(ev, snap)).or_insert(0) += 1;
    }
    counts
}

/// Drive every recording entry point for one rank. The payloads are
/// functions of `(rank, rep)` so each record is distinguishable and the
/// expected multiset is computable without running threads.
fn record_rank(trace: &Trace, rank: usize) {
    for rep in 0..REPS {
        trace.phase(rank, "aggregation", Duration::from_micros((rep + 1) as u64));
        trace.phase(rank, "file_io", Duration::from_micros((2 * rep + 1) as u64));
        trace.message(
            rank,
            (rank + 1) % RANKS,
            7,
            (rank * REPS + rep) as u64,
            Dir::Sent,
        );
        trace.message(
            (rank + RANKS - 1) % RANKS,
            rank,
            7,
            rep as u64,
            Dir::Received,
        );
        trace.storage_op(
            rank,
            "write_file",
            &format!("file_{}.spd", rank % 4),
            rep as u64,
            Duration::from_micros(rank as u64),
        );
        if rep % 17 == 0 {
            trace.fault(rank, "transient", &format!("file_{}.spd", rank % 4), true);
        }
    }
}

#[test]
fn concurrent_sharded_recording_merges_to_the_serial_multiset() {
    // Serial reference: one thread records all ranks in order.
    let serial = Trace::collecting();
    for rank in 0..RANKS {
        record_rank(&serial, rank);
    }
    let expected = multiset(&serial.snapshot());

    // Concurrent: one thread per rank, all hammering the shared trace.
    let concurrent = Trace::collecting();
    std::thread::scope(|s| {
        for rank in 0..RANKS {
            let t = concurrent.clone();
            s.spawn(move || record_rank(&t, rank));
        }
    });
    let snap = concurrent.snapshot();

    // 2 phases + 2 messages + 1 storage op per rep, plus the periodic fault.
    let per_rank_events = 5 * REPS + REPS.div_ceil(17);
    assert_eq!(snap.events.len(), RANKS * per_rank_events);
    assert_eq!(
        multiset(&snap),
        expected,
        "merged multiset must match serial recording"
    );
}

#[test]
fn concurrent_interning_yields_one_id_per_name() {
    let trace = Trace::collecting();
    std::thread::scope(|s| {
        for rank in 0..RANKS {
            let t = trace.clone();
            s.spawn(move || {
                for rep in 0..REPS {
                    t.storage_op(
                        rank,
                        "read_file",
                        &format!("shared_{}.spd", rep % 3),
                        1,
                        Duration::ZERO,
                    );
                }
            });
        }
    });
    let snap = trace.snapshot();
    // Three distinct names, however many threads raced to intern them.
    assert_eq!(snap.files.len(), 3);
    for ev in &snap.events {
        let TraceEvent::StorageOp { file, .. } = ev else {
            panic!("unexpected event {ev:?}");
        };
        assert!(snap.file_name(*file).starts_with("shared_"));
    }
}

#[test]
fn take_events_drains_across_shards() {
    let trace = Trace::collecting();
    std::thread::scope(|s| {
        for rank in 0..8 {
            let t = trace.clone();
            s.spawn(move || t.phase(rank, "setup", Duration::from_micros(1)));
        }
    });
    assert_eq!(trace.take_events().len(), 8);
    assert!(trace.is_empty(), "drain must leave every shard empty");
}
