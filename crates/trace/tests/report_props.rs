//! Property tests for [`JobReport`] serialization: any report — including
//! the version-2 derived tables (latency percentiles, imbalance rows,
//! per-rank write bytes, fault ledger) — must survive a JSON round trip
//! bit-for-bit, whether built field-by-field or derived from a random
//! event stream.

use spio_trace::{
    AggBytes, CommEntry, Dir, FaultTotal, ImbalanceRow, JobReport, OpLatency, PhaseTotal,
    StorageTotal, Trace,
};
use spio_util::check::{cases, Gen};
use std::time::Duration;

const OPS: [&str; 4] = ["write_file", "read_file", "read_range", "retry"];
const PHASES: [&str; 4] = ["setup", "aggregation", "file_io", "meta"];
const KINDS: [&str; 4] = ["transient", "torn_write", "io_error", "partial_read"];

fn arbitrary_report(g: &mut Gen) -> JobReport {
    let nfiles = g.usize_in(1, 5);
    let mut r = JobReport {
        nprocs: g.usize_in(1, 64),
        files: (0..nfiles).map(|i| format!("file_{i}.spd")).collect(),
        ..Default::default()
    };
    for _ in 0..g.usize_in(0, 6) {
        r.phases.push(PhaseTotal {
            rank: g.usize_in(0, 64),
            phase: PHASES[g.index(PHASES.len())].to_string(),
            micros: g.u64_in(0, 1 << 32),
        });
    }
    for _ in 0..g.usize_in(0, 6) {
        r.comm.push(CommEntry {
            src: g.usize_in(0, 64),
            dst: g.usize_in(0, 64),
            tag: g.u32_in(0, 16),
            msgs_sent: g.u64_in(0, 1000),
            bytes_sent: g.u64_in(0, 1 << 40),
            msgs_received: g.u64_in(0, 1000),
            bytes_received: g.u64_in(0, 1 << 40),
        });
    }
    for _ in 0..g.usize_in(0, 8) {
        r.storage.push(StorageTotal {
            rank: g.usize_in(0, 64),
            op: OPS[g.index(OPS.len())].to_string(),
            file: g.u32_in(0, nfiles as u32),
            bytes: g.u64_in(0, 1 << 40),
            micros: g.u64_in(0, 1 << 32),
        });
    }
    for _ in 0..g.usize_in(0, 3) {
        r.faults.push(FaultTotal {
            kind: KINDS[g.index(KINDS.len())].to_string(),
            injected: g.u64_in(0, 100),
            organic: g.u64_in(0, 100),
        });
    }
    for _ in 0..g.usize_in(0, 3) {
        r.op_latency.push(OpLatency {
            op: OPS[g.index(OPS.len())].to_string(),
            count: g.u64_in(1, 1000),
            p50_us: g.u64_in(0, 1 << 20),
            p95_us: g.u64_in(0, 1 << 20),
            p99_us: g.u64_in(0, 1 << 20),
            max_us: g.u64_in(0, 1 << 20),
        });
    }
    for _ in 0..g.usize_in(0, 3) {
        r.imbalance.push(ImbalanceRow {
            phase: PHASES[g.index(PHASES.len())].to_string(),
            max_us: g.u64_in(0, 1 << 32),
            mean_us: g.u64_in(0, 1 << 32),
        });
    }
    for _ in 0..g.usize_in(0, 4) {
        r.agg_bytes.push(AggBytes {
            rank: g.usize_in(0, 64),
            bytes: g.u64_in(0, 1 << 40),
        });
    }
    r
}

#[test]
fn any_report_roundtrips_through_json() {
    cases(200, |g| {
        let report = arbitrary_report(g);
        let back = JobReport::from_json(&report.to_json())
            .unwrap_or_else(|e| panic!("rejected own output: {e}"));
        assert_eq!(back, report);
    });
}

/// The stronger end-to-end property: record a random event stream, derive
/// the report (which computes the v2 tables), round-trip it, and also
/// check the derived tables agree with recomputation from the same events.
#[test]
fn derived_reports_roundtrip_and_rederive() {
    cases(60, |g| {
        let trace = Trace::collecting();
        let nprocs = g.usize_in(1, 9);
        for _ in 0..g.usize_in(1, 40) {
            match g.index(4) {
                0 => trace.phase(
                    g.index(nprocs),
                    PHASES[g.index(PHASES.len())],
                    Duration::from_micros(g.u64_in(0, 10_000)),
                ),
                1 => trace.message(
                    g.index(nprocs),
                    g.index(nprocs),
                    g.u32_in(0, 4),
                    g.u64_in(0, 1 << 20),
                    if g.bool() { Dir::Sent } else { Dir::Received },
                ),
                2 => trace.storage_op(
                    g.index(nprocs),
                    OPS[g.index(OPS.len())],
                    &format!("f{}.spd", g.index(3)),
                    g.u64_in(0, 1 << 20),
                    Duration::from_micros(g.u64_in(0, 10_000)),
                ),
                _ => trace.fault(
                    g.index(nprocs),
                    KINDS[g.index(KINDS.len())],
                    &format!("f{}.spd", g.index(3)),
                    g.bool(),
                ),
            }
        }
        let snapshot = trace.snapshot();
        let report = JobReport::from_snapshot(nprocs, &snapshot);
        let back = JobReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // Derived tables are pure functions of the event stream.
        assert_eq!(JobReport::from_snapshot(nprocs, &snapshot), report);
        // Sanity: every storage record's file id resolves.
        for s in &report.storage {
            assert!(report.file_name(s.file).starts_with('f'));
        }
        let _ = report.render();
    });
}

/// Snapshot JSON round-trips too, including the interned file table, and
/// report derivation commutes with snapshot serialization.
#[test]
fn snapshot_roundtrip_preserves_report() {
    cases(40, |g| {
        let trace = Trace::collecting();
        let nprocs = g.usize_in(1, 5);
        for _ in 0..g.usize_in(1, 20) {
            trace.storage_op(
                g.index(nprocs),
                OPS[g.index(OPS.len())],
                &format!("f{}.spd", g.index(4)),
                g.u64_in(0, 1 << 16),
                Duration::from_micros(g.u64_in(0, 1000)),
            );
        }
        let snapshot = trace.snapshot();
        let back = spio_trace::TraceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.files, snapshot.files);
        assert_eq!(back.events.len(), snapshot.events.len());
        assert_eq!(
            JobReport::from_snapshot(nprocs, &back),
            JobReport::from_snapshot(nprocs, &snapshot)
        );
    });
}
