//! # spio-tools
//!
//! Dataset tooling for the spatially-aware particle format, exposed as the
//! `spio` command-line binary and as a library for tests and scripts:
//!
//! * [`inspect`] — summarize a dataset: the Fig. 4 metadata table, LOD
//!   parameters, per-file particle counts and attribute ranges;
//! * [`validate`] — deep-check a dataset: metadata invariants, file
//!   headers, payload sizes, spatial containment, id uniqueness, and the
//!   recorded shuffle seeds;
//! * [`query`] — run a box (optionally density-filtered) query and report
//!   counts and I/O statistics;
//! * [`lod_stats`] — show how a level-of-detail read would progress;
//! * [`convert_fpp`] — rewrite a file-per-process dataset into the
//!   spatially-aware format, i.e. the "costly post-process data
//!   conversion step" (§2) that writing natively in this format avoids.

use spio_core::shuffle::{partition_seed, shuffle_permutation};
use spio_core::writer::flags;
use spio_core::{DatasetReader, FsStorage, Storage};
use spio_format::data_file::{decode_data_file, DataFileHeader};
use spio_format::{data_file_name, FileEntry, LodParams, SpatialMetadata, META_FILE_NAME};
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, SpioError};

/// Human-readable dataset summary.
pub fn inspect<S: Storage>(storage: &S) -> Result<String, SpioError> {
    let reader = DatasetReader::open(storage)?;
    let m = &reader.meta;
    let mut out = String::new();
    out.push_str(&format!(
        "domain        {:?} .. {:?}\n\
         writer grid   {}x{}x{} ({} ranks)\n\
         factor        {}\n\
         lod           P={} S={}\n\
         particles     {}\n\
         data files    {}\n",
        m.domain.lo,
        m.domain.hi,
        m.writer_grid.nx,
        m.writer_grid.ny,
        m.writer_grid.nz,
        m.writer_grid.count(),
        m.partition_factor,
        m.lod.p,
        m.lod.s,
        m.total_particles,
        m.entries.len(),
    ));
    out.push_str("\nfile             agg  particles   lo                     hi\n");
    for e in &m.entries {
        out.push_str(&format!(
            "{:<16} {:>4} {:>10}   [{:.3},{:.3},{:.3}]   [{:.3},{:.3},{:.3}]\n",
            e.file_name(),
            e.agg_rank,
            e.particle_count,
            e.bounds.lo[0],
            e.bounds.lo[1],
            e.bounds.lo[2],
            e.bounds.hi[0],
            e.bounds.hi[1],
            e.bounds.hi[2],
        ));
    }
    if let Some(ranges) = &m.attr_ranges {
        out.push_str("\nattribute ranges (density / volume):\n");
        for (e, r) in m.entries.iter().zip(ranges) {
            out.push_str(&format!(
                "{:<16} density [{:.4}, {:.4}]  volume [{:.2e}, {:.2e}]\n",
                e.file_name(),
                r.density_min,
                r.density_max,
                r.volume_min,
                r.volume_max
            ));
        }
    }
    Ok(out)
}

/// Outcome of a deep validation pass.
#[derive(Debug, Default)]
pub struct ValidationReport {
    pub files_checked: usize,
    /// Files carrying (and passing) format-v2 payload checksums. v1 files
    /// validate structurally but have no integrity checking, so a dataset
    /// with `checksummed_files < files_checked` is worth rewriting.
    pub checksummed_files: usize,
    pub particles_checked: u64,
    pub problems: Vec<String>,
}

impl ValidationReport {
    pub fn is_ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Deep-check every invariant a correctly written dataset must satisfy.
pub fn validate<S: Storage>(storage: &S) -> Result<ValidationReport, SpioError> {
    let mut report = ValidationReport::default();
    let reader = DatasetReader::open(storage)?;
    let m = &reader.meta;
    if let Err(e) = m.validate_disjoint() {
        report.problems.push(format!("metadata: {e}"));
    }
    let mut ids: Vec<u64> = Vec::new();
    let mut total: u64 = 0;
    for (idx, entry) in m.entries.iter().enumerate() {
        let name = entry.file_name();
        let bytes = match storage.read_file(&name) {
            Ok(b) => b,
            Err(e) => {
                report.problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        report.files_checked += 1;
        // `decode_data_file` verifies the v2 header CRC and every payload
        // chunk checksum, so any flipped byte lands in `problems` here.
        let (header, particles) = match decode_data_file(&bytes) {
            Ok(v) => v,
            Err(e) => {
                report.problems.push(format!("{name}: corrupt: {e}"));
                continue;
            }
        };
        if header.has_checksums() {
            report.checksummed_files += 1;
        }
        if header.particle_count != entry.particle_count {
            report.problems.push(format!(
                "{name}: header says {} particles, metadata says {}",
                header.particle_count, entry.particle_count
            ));
        }
        if header.bounds != entry.bounds {
            report
                .problems
                .push(format!("{name}: header bounds disagree with metadata"));
        }
        for p in &particles {
            if !entry.bounds.contains(p.position) {
                report.problems.push(format!(
                    "{name}: particle {} at {:?} outside the file box",
                    p.id, p.position
                ));
                break;
            }
        }
        if let Some(ranges) = &m.attr_ranges {
            let r = &ranges[idx];
            if particles
                .iter()
                .any(|p| p.density < r.density_min || p.density > r.density_max)
            {
                report
                    .problems
                    .push(format!("{name}: density outside recorded range"));
            }
        }
        // Layout check: a plain Fisher–Yates file must match the
        // permutation its header seed implies when un-shuffled to a
        // sorted-by-id sequence is not required — but the permutation must
        // at least be reconstructible without panics.
        if header.flags & (flags::STRATIFIED_ORDER | flags::KEYED_SHUFFLE) == 0 {
            let _ = shuffle_permutation(particles.len(), header.shuffle_seed);
        }
        total += particles.len() as u64;
        report.particles_checked += particles.len() as u64;
        ids.extend(particles.iter().map(|p| p.id));
    }
    if total != m.total_particles {
        report.problems.push(format!(
            "files hold {total} particles, metadata says {}",
            m.total_particles
        ));
    }
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    if ids.len() != before {
        report
            .problems
            .push(format!("{} duplicated particle ids", before - ids.len()));
    }
    Ok(report)
}

/// Run a box query (with an optional density filter) and report counts and
/// I/O cost.
pub fn query<S: Storage>(
    storage: &S,
    query_box: &Aabb3,
    density: Option<(f64, f64)>,
) -> Result<String, SpioError> {
    let reader = DatasetReader::open(storage)?;
    let (hits, stats) = match density {
        Some((lo, hi)) => reader.read_box_density(storage, query_box, lo, hi)?,
        None => reader.read_box(storage, query_box)?,
    };
    Ok(format!(
        "matched {} of {} particles\nfiles opened: {} of {}\nbytes read: {}\ndecoded and discarded: {}\n",
        hits.len(),
        reader.meta.total_particles,
        stats.files_opened,
        reader.meta.entries.len(),
        stats.bytes_read,
        stats.particles_discarded,
    ))
}

/// Write a synthetic uniform dataset with `procs` simulated writer ranks
/// (one data file per rank patch), e.g. to seed CLI smoke tests and the
/// serve bench with an on-disk dataset.
pub fn generate_uniform<S: Storage + Clone + 'static>(
    storage: &S,
    procs: usize,
    per_rank: usize,
    seed: u64,
) -> Result<String, SpioError> {
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{SpatialWriter, WriterConfig};

    let procs = procs.max(1);
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::near_cubic(procs));
    let s = storage.clone();
    for rank_result in run_threaded_collect(procs, move |comm| {
        let ps = spio_workloads::uniform_patch_particles(&decomp, comm.rank(), per_rank, seed);
        SpatialWriter::new(
            decomp.clone(),
            WriterConfig::new(spio_types::PartitionFactor::new(1, 1, 1)),
        )
        .write(&comm, &ps, &s)
        .map(|_| ())
        .map_err(|e| format!("rank {}: {e}", comm.rank()))
    })? {
        rank_result.map_err(SpioError::Config)?;
    }
    let reader = DatasetReader::open(storage)?;
    Ok(format!(
        "wrote {} particles across {} files\n",
        reader.meta.total_particles,
        reader.meta.entries.len()
    ))
}

/// Run a box query answered from LOD prefixes: read every intersecting
/// file's shuffled prefix through `level` (clamped to the dataset's level
/// count) and filter to the box. Levels are uniform subsamples, so this
/// trades particle count for I/O — the report shows both.
pub fn query_lod<S: Storage>(
    storage: &S,
    query_box: &Aabb3,
    level: u32,
) -> Result<String, SpioError> {
    let reader = DatasetReader::open(storage)?;
    let mut cursor = reader.lod_box_cursor(query_box, 1);
    let levels = cursor.num_levels();
    if levels == 0 {
        return Ok("no files intersect the query box\n".to_string());
    }
    let capped = level.min(levels - 1);
    let files = reader.meta.files_intersecting(query_box).len();
    let (loaded, stats) = cursor.read_through_level(storage, capped)?;
    let matched = loaded
        .iter()
        .filter(|p| query_box.contains(p.position))
        .count();
    // The cursor issues one incremental range read per file per level, so
    // the op count exceeds the file count past level 0.
    Ok(format!(
        "lod level {capped} of {levels}{}\n\
         matched {matched} of {} particles (prefix holds {})\n\
         file reads: {} across {} of {} files\nbytes read: {}\n",
        if capped != level { " (clamped)" } else { "" },
        reader.meta.total_particles,
        loaded.len(),
        stats.files_opened,
        files,
        reader.meta.entries.len(),
        stats.bytes_read,
    ))
}

/// Replay a seeded multi-client query workload through a traced
/// [`spio_serve::QueryEngine`] and render the serving job report: query
/// latency percentiles, cache hit/miss/eviction counters, and per-file
/// degradation faults.
pub fn serve_bench<S: Storage + Clone + 'static>(
    storage: &S,
    clients: usize,
    spec: &spio_serve::WorkloadSpec,
    config: spio_serve::ServeConfig,
) -> Result<(String, spio_trace::JobReport), SpioError> {
    let trace = spio_trace::Trace::collecting();
    let engine = spio_serve::QueryEngine::open_traced(storage.clone(), config, trace.clone())?;
    let clients = clients.max(1);
    let mut served: Vec<Result<(usize, usize), SpioError>> =
        (0..clients).map(|_| Ok((0, 0))).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let (engine, meta) = (&engine, engine.meta());
                scope.spawn(move || {
                    let (mut ok, mut partial) = (0usize, 0usize);
                    for q in spio_serve::client_queries(meta, spec, client) {
                        if engine.execute_as(client, &q).is_complete() {
                            ok += 1;
                        } else {
                            partial += 1;
                        }
                    }
                    (ok, partial)
                })
            })
            .collect();
        for (client, h) in handles.into_iter().enumerate() {
            served[client] = h.join().map_err(|_| {
                SpioError::Comm(format!("serve-bench client {client} thread panicked"))
            });
        }
    });
    let served = served.into_iter().collect::<Result<Vec<_>, _>>()?;
    let cache = engine.cache_stats();
    let report = spio_trace::JobReport::from_snapshot(clients, &trace.snapshot())
        .with_metrics(&trace.metrics());
    let mut out = format!(
        "served {} queries from {} clients ({} partial)\n\
         cache: {} hits / {} misses / {} evictions, {} bytes in {} blocks\n\n",
        served.iter().map(|(ok, p)| ok + p).sum::<usize>(),
        clients,
        served.iter().map(|(_, p)| p).sum::<usize>(),
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.bytes,
        cache.blocks,
    );
    out.push_str(&report.render());
    Ok((out, report))
}

/// Describe how a progressive LOD read with `nreaders` would unfold.
pub fn lod_stats<S: Storage>(storage: &S, nreaders: usize) -> Result<String, SpioError> {
    let reader = DatasetReader::open(storage)?;
    let m = &reader.meta;
    let levels = m.lod.num_levels(nreaders as u64, m.total_particles);
    let mut out = format!(
        "{} particles, {} readers, P={} S={} ⇒ {} levels\n\nlevel  level size  cumulative\n",
        m.total_particles, nreaders, m.lod.p, m.lod.s, levels
    );
    for l in 0..levels {
        out.push_str(&format!(
            "{:>5} {:>11} {:>11}\n",
            l,
            m.lod
                .actual_level_size(nreaders as u64, l, m.total_particles),
            m.lod.prefix_len(nreaders as u64, l, m.total_particles),
        ));
    }
    Ok(out)
}

/// Convert a file-per-process dataset (written by `nwriters` ranks via
/// `spio_baselines::FppWriter`) into the spatially-aware format — the
/// post-process conversion step the paper's native format avoids. Runs
/// single-process: reads every rank file, bins particles by partition,
/// shuffles, writes data + metadata files to `dst`.
pub fn convert_fpp<S1: Storage, S2: Storage>(
    src: &S1,
    nwriters: usize,
    dst: &S2,
    factor: spio_types::PartitionFactor,
    domain: Aabb3,
) -> Result<String, SpioError> {
    use spio_baselines::FppWriter;
    use spio_core::grid::AggregationGrid;
    use spio_core::shuffle::lod_shuffle;
    use spio_format::data_file::encode_data_file;
    use spio_format::meta::AttrRange;

    let decomp = DomainDecomposition::uniform(domain, GridDims::near_cubic(nwriters));
    factor.validate(decomp.dims)?;
    let grid = AggregationGrid::aligned(&decomp, factor)?;
    let mut bins: Vec<Vec<Particle>> = vec![Vec::new(); grid.file_count()];
    let mut total_in: u64 = 0;
    for rank in 0..nwriters {
        for p in FppWriter::read_file(src, rank)? {
            let part = grid.partition_of_point(p.position).ok_or_else(|| {
                SpioError::Format(format!(
                    "particle {} at {:?} outside the declared domain",
                    p.id, p.position
                ))
            })?;
            bins[part].push(p);
            total_in += 1;
        }
    }
    let seed = 0x5910_C0DE;
    let mut entries = Vec::with_capacity(bins.len());
    let mut ranges = Vec::with_capacity(bins.len());
    for (part_idx, mut bin) in bins.into_iter().enumerate() {
        let pseed = partition_seed(seed, part_idx);
        lod_shuffle(&mut bin, pseed);
        let agg_rank = grid.partitions[part_idx].agg_rank;
        let bounds = grid.partitions[part_idx].bounds;
        let header = DataFileHeader::new(bin.len() as u64, bounds, pseed);
        dst.write_file(&data_file_name(agg_rank), &encode_data_file(&header, &bin))?;
        let mut r = AttrRange::empty();
        for p in &bin {
            r.include(p.density, p.volume);
        }
        ranges.push(r);
        entries.push(FileEntry {
            agg_rank: agg_rank as u64,
            particle_count: bin.len() as u64,
            bounds,
        });
    }
    let meta = SpatialMetadata {
        domain,
        writer_grid: decomp.dims,
        partition_factor: factor,
        lod: LodParams::default(),
        total_particles: total_in,
        entries,
        attr_ranges: Some(ranges),
    };
    dst.write_file(META_FILE_NAME, &meta.encode())?;
    Ok(format!(
        "converted {total_in} particles from {nwriters} rank files into {} spatial files\n",
        meta.entries.len()
    ))
}

/// List the timesteps of a series dataset.
pub fn series_info<S: Storage>(storage: &S) -> Result<String, SpioError> {
    use spio_core::timeseries::{open_timestep, SeriesManifest};
    let manifest = SeriesManifest::load(storage)?;
    if manifest.steps.is_empty() {
        return Ok("no series manifest (or empty series) in this directory\n".to_string());
    }
    let mut out = format!(
        "{} timesteps\n\nstep  particles  files\n",
        manifest.steps.len()
    );
    for &step in &manifest.steps {
        let (reader, _) = open_timestep(storage, step)?;
        out.push_str(&format!(
            "{:>4} {:>10} {:>6}\n",
            step,
            reader.meta.total_particles,
            reader.meta.entries.len()
        ));
    }
    Ok(out)
}

/// Render an x–y density projection of a dataset to a binary PPM image.
pub fn render_ppm<S: Storage>(
    storage: &S,
    width: usize,
    height: usize,
) -> Result<Vec<u8>, SpioError> {
    let reader = DatasetReader::open(storage)?;
    let domain = reader.meta.domain;
    let mut hist = vec![0u32; width * height];
    let e = domain.extent();
    for entry in reader.meta.entries.clone() {
        let (ps, _) = reader.read_box(storage, &entry.bounds)?;
        for p in ps {
            let cx = (((p.position[0] - domain.lo[0]) / e[0]) * width as f64) as usize;
            let cy = (((p.position[1] - domain.lo[1]) / e[1]) * height as f64) as usize;
            hist[cx.min(width - 1) + width * cy.min(height - 1)] += 1;
        }
    }
    let max = *hist.iter().max().unwrap_or(&1) as f64;
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for v in hist {
        let t = (v as f64 / max).powf(0.35);
        out.extend_from_slice(&[
            (t * 255.0) as u8,
            (t * 230.0) as u8,
            ((1.0 - t) * 160.0 + 40.0 * t) as u8,
        ]);
    }
    Ok(out)
}

/// Render a serialized [`spio_trace::JobReport`] (the JSON produced by
/// `JobReport::to_json`) as the human-readable Fig. 6-style breakdown:
/// per-phase time split, communication matrix, and storage-op totals.
pub fn report(json: &str) -> Result<String, SpioError> {
    let r = spio_trace::JobReport::from_json(json)
        .map_err(|e| SpioError::Format(format!("bad job report: {e}")))?;
    Ok(r.render())
}

/// Open an `FsStorage` for a CLI path argument.
pub fn open_dir(path: &str) -> FsStorage {
    FsStorage::new(path)
}

/// `spio lint`: scan the source tree and gate against the committed
/// `lint.ratchet` baseline (counts may only decrease). With `update`,
/// rewrite the baseline to the current counts instead.
///
/// Returns the human-readable summary plus `true` when the gate passes.
pub fn lint_ratchet(root: &str, update: bool) -> Result<(String, bool), SpioError> {
    use spio_verify::lint::{lint_tree, LintConfig, Ratchet};
    use std::fmt::Write as _;

    let cfg = LintConfig::new(root);
    let counts = lint_tree(&cfg)?;
    let path = cfg.ratchet_path();
    if update {
        std::fs::write(&path, Ratchet::from_counts(&counts).render())?;
        return Ok((
            format!(
                "wrote {} ({} findings across {} crate/rule pairs)\n",
                path.display(),
                counts.total(),
                counts.counts.len()
            ),
            true,
        ));
    }
    let baseline = Ratchet::load(&path).map_err(|e| {
        SpioError::Config(format!(
            "cannot read {}: {e}\nrun `spio lint --update` to create the baseline",
            path.display()
        ))
    })?;
    let cmp = baseline.compare(&counts);
    let mut out = format!(
        "lint: {} findings, baseline tolerates {}\n",
        counts.total(),
        baseline.entries.values().sum::<u64>()
    );
    for (krate, rule, base, cur) in &cmp.improvements {
        let _ = writeln!(
            out,
            "  improved  {krate}/{rule}: {base} -> {cur} (tighten with `spio lint --update`)"
        );
    }
    for (krate, rule, base, cur) in &cmp.regressions {
        let _ = writeln!(out, "  REGRESSED {krate}/{rule}: {base} -> {cur}");
        // The scanner can't know which occurrences are new, so list all
        // current sites for the regressed pair — the diff will be obvious
        // against the PR.
        for f in counts
            .findings
            .iter()
            .filter(|f| f.rule == rule.as_str() && f.file.contains(&format!("{krate}/")))
        {
            let _ = writeln!(out, "      {}:{}: {}", f.file, f.line, f.excerpt);
        }
    }
    let ok = cmp.is_ok();
    let _ = writeln!(
        out,
        "lint gate {}",
        if ok {
            "PASS"
        } else {
            "FAIL (counts may only decrease)"
        }
    );
    Ok((out, ok))
}

/// `spio verify-comm`: run the MPI-semantics verification suite — every
/// collective checked for schedule invariance across `seeds` deterministic
/// interleavings of `procs` ranks, then the known-bad fixture corpus run
/// under `CheckedComm` over the explorer, asserting each is *diagnosed*
/// (mismatch diff or structural deadlock), never a hang.
pub fn verify_comm(procs: usize, seeds: u64) -> Result<String, SpioError> {
    use spio_comm::collectives::{
        allreduce_u64, binomial_broadcast, direct_alltoall, dissemination_barrier,
        exclusive_scan_u64, gather_to, ring_allgather, tree_reduce_u64,
    };
    use spio_comm::Comm;
    use spio_verify::{explore_collect, fixtures, CheckedWorld, ExplorerComm};
    use std::fmt::Write as _;

    let procs = procs.max(2);
    let seeds = seeds.max(1);
    let mut out = String::new();
    let mut failures = Vec::new();

    // Part 1: schedule invariance. Each collective must produce identical
    // per-rank results under every seeded interleaving.
    type CollectiveFn = fn(&ExplorerComm) -> Vec<u8>;
    let collectives: &[(&str, CollectiveFn)] = &[
        ("barrier", |c| {
            dissemination_barrier(c);
            vec![c.rank() as u8]
        }),
        ("allgather", |c| {
            ring_allgather(c, &[c.rank() as u8]).concat()
        }),
        ("alltoall", |c| {
            let sends = (0..c.size())
                .map(|d| vec![c.rank() as u8, d as u8])
                .collect();
            direct_alltoall(c, sends).concat()
        }),
        ("gather", |c| {
            gather_to(c, 0, &[c.rank() as u8])
                .map(|v| v.concat())
                .unwrap_or_default()
        }),
        ("broadcast", |c| binomial_broadcast(c, 1, vec![7, 7])),
        ("reduce", |c| {
            tree_reduce_u64(c, 0, c.rank() as u64 + 1, u64::wrapping_add)
                .unwrap_or(0)
                .to_le_bytes()
                .to_vec()
        }),
        ("allreduce", |c| {
            allreduce_u64(c, 1 << c.rank(), |a, b| a | b)
                .to_le_bytes()
                .to_vec()
        }),
        ("scan", |c| {
            exclusive_scan_u64(c, c.rank() as u64 + 1)
                .to_le_bytes()
                .to_vec()
        }),
    ];
    for (name, f) in collectives {
        let f = *f;
        let mut reference: Option<Vec<Vec<u8>>> = None;
        let mut verdict = format!("ok ({seeds} seeds)");
        for seed in 0..seeds {
            match explore_collect(procs, seed, move |comm| f(&comm)) {
                Ok(results) => match &reference {
                    None => reference = Some(results),
                    Some(expected) if *expected != results => {
                        verdict = format!("DIVERGED at seed {seed}");
                        failures.push(format!("{name}: results depend on the schedule"));
                        break;
                    }
                    Some(_) => {}
                },
                Err(e) => {
                    verdict = format!("FAILED at seed {seed}: {e}");
                    failures.push(format!("{name}: {e}"));
                    break;
                }
            }
        }
        let _ = writeln!(out, "  invariance {name:<10} {verdict}");
    }

    // Part 2: every known-bad program must be diagnosed, not hung.
    type FixtureFn = fn(&spio_verify::CheckedComm<ExplorerComm>);
    let bad: &[(&str, FixtureFn)] = &[
        ("skipped-barrier", |c| fixtures::skipped_barrier(c)),
        ("tag-mismatch", |c| fixtures::tag_mismatch(c)),
        ("recv-without-send", |c| fixtures::recv_without_send(c)),
        ("root-disagreement", |c| fixtures::root_disagreement(c)),
        ("unequal-collectives", |c| {
            fixtures::unequal_collective_counts(c)
        }),
    ];
    // The fixtures panic by design (that's the diagnostic mechanism);
    // silence the default hook so the run prints verdicts, not five
    // backtraces. Restored before returning.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (name, f) in bad {
        let f = *f;
        let world = CheckedWorld::new(spio_trace::Trace::off())
            .with_stall_timeout(std::time::Duration::from_millis(200));
        let outcome = explore_collect(procs, 0, move |comm| {
            let checked = world.wrap(comm);
            f(&checked);
            checked.finalize().map(|_| ()).map_err(|e| e.to_string())
        });
        match outcome {
            Err(e) => {
                let first = e.to_string();
                let first = first.lines().next().unwrap_or_default().to_string();
                let _ = writeln!(out, "  fixture    {name:<20} diagnosed: {first}");
            }
            Ok(_) => {
                failures.push(format!("{name}: known-bad program was NOT diagnosed"));
                let _ = writeln!(out, "  fixture    {name:<20} NOT DIAGNOSED");
            }
        }
    }
    std::panic::set_hook(prev_hook);

    if failures.is_empty() {
        let _ = writeln!(out, "verify-comm PASS ({procs} ranks)");
        Ok(out)
    } else {
        Err(SpioError::Comm(format!(
            "verify-comm FAIL:\n{out}\n{}",
            failures.join("\n")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{MemStorage, SpatialWriter, WriterConfig};
    use spio_types::PartitionFactor;
    use spio_workloads::uniform_patch_particles;

    fn sample_dataset() -> MemStorage {
        let storage = MemStorage::new();
        let s = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
        run_threaded_collect(4, move |comm| {
            let ps = uniform_patch_particles(&d, comm.rank(), 100, 3);
            SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(1, 2, 1)))
                .write(&comm, &ps, &s)
                .unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn inspect_summarizes_dataset() {
        let s = sample_dataset();
        let text = inspect(&s).unwrap();
        assert!(text.contains("particles     400"), "{text}");
        assert!(text.contains("data files    2"), "{text}");
        assert!(text.contains("file_0.spd"), "{text}");
        assert!(text.contains("attribute ranges"), "{text}");
    }

    #[test]
    fn validate_passes_good_dataset() {
        let s = sample_dataset();
        let report = validate(&s).unwrap();
        assert!(report.is_ok(), "{:?}", report.problems);
        assert_eq!(report.files_checked, 2);
        assert_eq!(report.checksummed_files, 2, "v2 writes carry checksums");
        assert_eq!(report.particles_checked, 400);
    }

    #[test]
    fn validate_catches_single_bit_flip_via_checksums() {
        let s = sample_dataset();
        // Flip one bit deep in the payload — structurally still a valid
        // file, caught only by the v2 chunk checksums.
        let mut bytes = s.read_file("file_0.spd").unwrap();
        let mid = spio_format::data_file::HEADER_BYTES + bytes.len() / 2;
        bytes[mid] ^= 0x01;
        s.write_file("file_0.spd", &bytes).unwrap();
        let report = validate(&s).unwrap();
        assert!(
            report.problems.iter().any(|p| p.contains("checksum")),
            "{:?}",
            report.problems
        );
    }

    #[test]
    fn validate_catches_corruption() {
        let s = sample_dataset();
        // Overwrite the first particle's x coordinate with 99.0 — far
        // outside the file's box.
        let mut bytes = s.read_file("file_0.spd").unwrap();
        let off = spio_format::data_file::HEADER_BYTES;
        bytes[off..off + 8].copy_from_slice(&99.0f64.to_le_bytes());
        s.write_file("file_0.spd", &bytes).unwrap();
        let report = validate(&s).unwrap();
        assert!(!report.is_ok());
    }

    #[test]
    fn validate_catches_truncation() {
        let s = sample_dataset();
        let bytes = s.read_file("file_0.spd").unwrap();
        s.write_file("file_0.spd", &bytes[..bytes.len() - 5])
            .unwrap();
        let report = validate(&s).unwrap();
        assert!(report.problems.iter().any(|p| p.contains("corrupt")));
    }

    #[test]
    fn query_reports_counts() {
        let s = sample_dataset();
        let text = query(&s, &Aabb3::new([0.0; 3], [0.5, 1.0, 1.0]), None).unwrap();
        assert!(text.contains("matched 200 of 400"), "{text}");
        assert!(text.contains("files opened: 1 of 2"), "{text}");
    }

    #[test]
    fn query_lod_answers_from_prefixes() {
        let s = sample_dataset();
        let q = Aabb3::new([0.0; 3], [0.5, 1.0, 1.0]);
        // Level 0 reads only the intersecting file's share of the P=32
        // global prefix: 32 * (200/400) = 16 particles.
        let text = query_lod(&s, &q, 0).unwrap();
        assert!(text.contains("lod level 0"), "{text}");
        assert!(text.contains("prefix holds 16"), "{text}");
        assert!(text.contains("file reads: 1 across 1 of 2 files"), "{text}");
        // A too-deep level clamps to the last and recovers every particle.
        let text = query_lod(&s, &q, 99).unwrap();
        assert!(text.contains("(clamped)"), "{text}");
        assert!(text.contains("matched 200"), "{text}");
    }

    #[test]
    fn serve_bench_replays_and_reports() {
        let s = sample_dataset();
        let spec = spio_serve::WorkloadSpec {
            queries_per_client: 8,
            ..Default::default()
        };
        let (text, report) = serve_bench(&s, 2, &spec, spio_serve::ServeConfig::default()).unwrap();
        assert!(text.contains("served 16 queries from 2 clients"), "{text}");
        assert!(text.contains("(0 partial)"), "{text}");
        assert!(text.contains("serve.query.count"), "{text}");
        assert!(report.op_latency("serve.query").is_some());
        assert!(
            report
                .metric(spio_serve::cache::metric_names::HITS)
                .is_some(),
            "cache counters in the report"
        );
    }

    #[test]
    fn lod_stats_lists_levels() {
        let s = sample_dataset();
        let text = lod_stats(&s, 1).unwrap();
        assert!(text.contains("400 particles"), "{text}");
        // P=32, S=2: 32, 64, 128, 176.
        assert!(text.contains("4 levels"), "{text}");
    }

    #[test]
    fn series_info_lists_steps() {
        use spio_core::timeseries::SeriesWriter;
        let storage = MemStorage::new();
        for step in [3u64, 9] {
            let s = storage.clone();
            run_threaded_collect(4, move |comm| {
                let d = DomainDecomposition::uniform(
                    Aabb3::new([0.0; 3], [1.0; 3]),
                    GridDims::new(2, 2, 1),
                );
                let ps = uniform_patch_particles(&d, comm.rank(), 50, step);
                SeriesWriter::new(SpatialWriter::new(
                    d.clone(),
                    WriterConfig::new(PartitionFactor::new(2, 1, 1)),
                ))
                .write_timestep(&comm, step, &ps, &s)
                .unwrap();
            })
            .unwrap();
        }
        let text = series_info(&storage).unwrap();
        assert!(text.contains("2 timesteps"), "{text}");
        assert!(text.contains("   3        200"), "{text}");
        assert!(text.contains("   9        200"), "{text}");
        // A non-series directory reports gracefully.
        let empty = MemStorage::new();
        assert!(series_info(&empty).unwrap().contains("no series"));
    }

    #[test]
    fn render_ppm_produces_valid_image() {
        let s = sample_dataset();
        let img = render_ppm(&s, 40, 20).unwrap();
        assert!(img.starts_with(b"P6\n40 20\n255\n"));
        assert_eq!(img.len(), b"P6\n40 20\n255\n".len() + 40 * 20 * 3);
    }

    #[test]
    fn traced_job_report_renders_end_to_end() {
        use spio_comm::TracedComm;
        use spio_core::{TracedStorage, WriteStats};
        use spio_trace::{JobReport, Trace};

        // Full pipeline with every instrumentation layer attached: traced
        // communicator, traced storage, phase-span-recording writer and
        // reader, all feeding one shared trace.
        let storage = MemStorage::new();
        let trace = Trace::collecting();
        let s = storage.clone();
        let t = trace.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
        let d2 = d.clone();
        let stats = run_threaded_collect(4, move |comm| {
            let me = comm.rank();
            let comm = TracedComm::new(comm, t.clone());
            let storage = TracedStorage::new(s.clone(), t.clone(), me);
            let ps = uniform_patch_particles(&d2, me, 200, 11);
            let stats =
                SpatialWriter::new(d2.clone(), WriterConfig::new(PartitionFactor::new(2, 1, 1)))
                    .with_trace(t.clone())
                    .write(&comm, &ps, &storage)
                    .unwrap();
            let reader = DatasetReader::open_traced(&storage, t.clone(), me).unwrap();
            let patch = d2.patch_bounds(me);
            let (got, _) = reader.read_box(&storage, &patch).unwrap();
            assert!(!got.is_empty());
            stats
        })
        .unwrap();

        let report = JobReport::from_snapshot(4, &trace.snapshot());
        // Comm matrix balances and covers the §3.3 exchange.
        assert!(report.comm_imbalances().is_empty());
        assert!(report.total_bytes_sent() > 0);
        // Trace-derived write phases agree with WriteStats (same clock).
        let merged = WriteStats::merge_max(&stats);
        let agg_us = merged.aggregation_time.as_micros() as u64;
        let got_us = report.phase_max("aggregation").as_micros() as u64;
        assert!(got_us.abs_diff(agg_us) <= 1, "{got_us} vs {agg_us}");

        // JSON roundtrip through the CLI-facing `report` renderer.
        let rendered = super::report(&report.to_json()).unwrap();
        assert!(rendered.contains("job report — 4 ranks"), "{rendered}");
        assert!(rendered.contains("phase breakdown"), "{rendered}");
        assert!(rendered.contains("aggregation"), "{rendered}");
        assert!(rendered.contains("read:box"), "{rendered}");
        assert!(rendered.contains("communication matrix"), "{rendered}");
        assert!(
            rendered.contains("sent == received for every (src, dst, tag)"),
            "{rendered}"
        );
        assert!(rendered.contains("write_file"), "{rendered}");
        // Malformed input errors cleanly.
        assert!(super::report("not json").is_err());
    }

    #[test]
    fn verify_comm_passes_on_healthy_collectives() {
        let text = verify_comm(3, 4).unwrap();
        assert!(text.contains("invariance barrier"), "{text}");
        assert!(text.contains("invariance scan"), "{text}");
        assert!(text.contains("fixture    skipped-barrier"), "{text}");
        assert!(text.contains("diagnosed"), "{text}");
        assert!(text.contains("verify-comm PASS"), "{text}");
        assert!(!text.contains("NOT DIAGNOSED"), "{text}");
    }

    #[test]
    fn lint_ratchet_gates_and_updates() {
        let dir = spio_util::tempdir().unwrap();
        let root = dir.path().to_string_lossy().into_owned();
        let src = dir.path().join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), "pub fn f() { x.unwrap(); }\n").unwrap();

        // No baseline yet: the gate refuses and points at --update.
        let err = lint_ratchet(&root, false).unwrap_err();
        assert!(err.to_string().contains("--update"), "{err}");

        // --update writes the baseline; the gate then passes.
        let (msg, ok) = lint_ratchet(&root, true).unwrap();
        assert!(ok, "{msg}");
        let (msg, ok) = lint_ratchet(&root, false).unwrap();
        assert!(ok, "{msg}");
        assert!(msg.contains("lint gate PASS"), "{msg}");

        // New debt: the ratchet fails and names the site.
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f() { x.unwrap(); y.unwrap(); }\n",
        )
        .unwrap();
        let (msg, ok) = lint_ratchet(&root, false).unwrap();
        assert!(!ok, "{msg}");
        assert!(
            msg.contains("REGRESSED demo/unwrap-expect: 1 -> 2"),
            "{msg}"
        );
        assert!(msg.contains("crates/demo/src/lib.rs:1"), "{msg}");

        // Paying debt down passes (and suggests tightening).
        std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").unwrap();
        let (msg, ok) = lint_ratchet(&root, false).unwrap();
        assert!(ok, "{msg}");
        assert!(msg.contains("improved"), "{msg}");
    }

    #[test]
    fn convert_fpp_produces_valid_spatial_dataset() {
        use spio_baselines::FppWriter;
        // Build an FPP dataset with 4 writers.
        let src = MemStorage::new();
        let s = src.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
        run_threaded_collect(4, move |comm| {
            let ps = uniform_patch_particles(&d, comm.rank(), 150, 8);
            FppWriter::new().write(&comm, &ps, &s).unwrap();
        })
        .unwrap();

        let dst = MemStorage::new();
        // near_cubic(4) = 1x2x2, so split along z with factor (1,2,1).
        let msg = convert_fpp(
            &src,
            4,
            &dst,
            PartitionFactor::new(1, 2, 1),
            Aabb3::new([0.0; 3], [1.0; 3]),
        )
        .unwrap();
        assert!(msg.contains("600 particles"), "{msg}");
        // The converted dataset passes deep validation and box queries.
        let report = validate(&dst).unwrap();
        assert!(report.is_ok(), "{:?}", report.problems);
        let reader = DatasetReader::open(&dst).unwrap();
        assert_eq!(reader.meta.total_particles, 600);
        let (all, _) = reader.read_all(&dst).unwrap();
        assert_eq!(all.len(), 600);
    }
}
