//! The `spio` command-line tool: inspect, validate, query and convert
//! spatially-aware particle datasets.
//!
//! ```text
//! spio inspect  <dir>
//! spio validate <dir>
//! spio query    <dir> <x0> <y0> <z0> <x1> <y1> <z1> [--density <lo> <hi>]
//! spio lod      <dir> [readers]
//! spio report   <job-report.json>
//! spio convert-fpp <src-dir> <nwriters> <dst-dir> <PxXPyXPz> \
//!                  <x0> <y0> <z0> <x1> <y1> <z1>
//! ```

use spio_tools::open_dir;
use spio_types::{Aabb3, PartitionFactor};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spio inspect  <dir>\n  spio validate <dir>\n  \
         spio query    <dir> <x0> <y0> <z0> <x1> <y1> <z1> [--density <lo> <hi>]\n  \
         spio lod      <dir> [readers]\n  \
         spio report   <job-report.json>\n  \
         spio series   <dir>\n  \
         spio render   <dir> <out.ppm>\n  \
         spio convert-fpp <src-dir> <nwriters> <dst-dir> <PxxPyxPz> <x0> <y0> <z0> <x1> <y1> <z1>"
    );
    ExitCode::from(2)
}

fn parse_f64s(args: &[String]) -> Option<Vec<f64>> {
    args.iter().map(|a| a.parse().ok()).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), &args[1..]) {
        ("inspect", [dir]) => spio_tools::inspect(&open_dir(dir)).map(|t| print!("{t}")),
        ("validate", [dir]) => spio_tools::validate(&open_dir(dir)).map(|report| {
            println!(
                "checked {} files / {} particles",
                report.files_checked, report.particles_checked
            );
            if report.is_ok() {
                println!("dataset OK");
            } else {
                for p in &report.problems {
                    println!("PROBLEM: {p}");
                }
                std::process::exit(1);
            }
        }),
        ("query", rest) if rest.len() == 7 || rest.len() == 10 => {
            let dir = &rest[0];
            match parse_f64s(&rest[1..7]) {
                Some(c) => {
                    let density = if rest.len() == 10 && rest[7] == "--density" {
                        match parse_f64s(&rest[8..10]) {
                            Some(d) => Some((d[0], d[1])),
                            None => return usage(),
                        }
                    } else if rest.len() == 10 {
                        return usage();
                    } else {
                        None
                    };
                    let q = Aabb3::new([c[0], c[1], c[2]], [c[3], c[4], c[5]]);
                    spio_tools::query(&open_dir(dir), &q, density).map(|t| print!("{t}"))
                }
                None => return usage(),
            }
        }
        ("report", [file]) => std::fs::read_to_string(file)
            .map_err(Into::into)
            .and_then(|json| spio_tools::report(&json))
            .map(|t| print!("{t}")),
        ("series", [dir]) => spio_tools::series_info(&open_dir(dir)).map(|t| print!("{t}")),
        ("render", [dir, out]) => spio_tools::render_ppm(&open_dir(dir), 640, 640)
            .and_then(|img| std::fs::write(out, img).map_err(Into::into))
            .map(|()| println!("wrote {out}")),
        ("lod", [dir]) => spio_tools::lod_stats(&open_dir(dir), 1).map(|t| print!("{t}")),
        ("lod", [dir, readers]) => match readers.parse() {
            Ok(n) => spio_tools::lod_stats(&open_dir(dir), n).map(|t| print!("{t}")),
            Err(_) => return usage(),
        },
        ("convert-fpp", rest) if rest.len() == 10 => {
            let (src, dst) = (&rest[0], &rest[2]);
            let Ok(nwriters) = rest[1].parse::<usize>() else {
                return usage();
            };
            let Ok(factor) = PartitionFactor::parse(&rest[3]) else {
                return usage();
            };
            let Some(c) = parse_f64s(&rest[4..10]) else {
                return usage();
            };
            let domain = Aabb3::new([c[0], c[1], c[2]], [c[3], c[4], c[5]]);
            spio_tools::convert_fpp(&open_dir(src), nwriters, &open_dir(dst), factor, domain)
                .map(|t| print!("{t}"))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
