//! The `spio` command-line tool: inspect, validate, query and convert
//! spatially-aware particle datasets.
//!
//! ```text
//! spio inspect  <dir>
//! spio validate <dir>
//! spio query    <dir> <x0> <y0> <z0> <x1> <y1> <z1> [--density <lo> <hi>]
//! spio lod      <dir> [readers]
//! spio report   <job-report.json>
//! spio trace    <trace-snapshot.json> [--chrome <out.json>]
//! spio check-trace <chrome-trace.json>
//! spio bench    [--procs N] [--per-rank N] [--runs N] [--baseline F]
//!               [--write F] [--trace-out F] [--report-out F] [--metrics-out F]
//! spio convert-fpp <src-dir> <nwriters> <dst-dir> <PxXPyXPz> \
//!                  <x0> <y0> <z0> <x1> <y1> <z1>
//! ```

use spio_bench::read_bench::{self, ReadBenchConfig, ReadBenchRecord};
use spio_bench::regression::{self, BenchConfig, BenchRecord};
use spio_tools::open_dir;
use spio_trace::{chrome_trace, validate_chrome_trace, Timeline, TraceSnapshot};
use spio_types::{Aabb3, PartitionFactor, SpioError};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spio inspect  <dir>\n  spio validate <dir>\n  \
         spio gen      <dir> [procs] [per-rank]\n  \
         spio query    <dir> <x0> <y0> <z0> <x1> <y1> <z1> [--density <lo> <hi> | --lod L]\n  \
         spio lod      <dir> [readers]\n  \
         spio report   <job-report.json>\n  \
         spio trace    <trace-snapshot.json> [--chrome <out.json>]\n  \
         spio check-trace <chrome-trace.json>\n  \
         spio bench    [--procs N] [--per-rank N] [--runs N] [--baseline F] \
         [--write F] [--trace-out F] [--report-out F] [--metrics-out F]\n  \
         spio bench    --read [--procs N] [--per-rank N] [--clients N] [--queries N] \
         [--runs N] [--baseline F] [--write F] [--report-out F] [--metrics-out F]\n  \
         spio serve-bench <dir> [--clients N] [--queries N] [--workers N] [--seed N] \
         [--report-out F]\n  \
         spio series   <dir>\n  \
         spio render   <dir> <out.ppm>\n  \
         spio lint     [root] [--update]\n  \
         spio verify-comm [--procs N] [--seeds K]\n  \
         spio convert-fpp <src-dir> <nwriters> <dst-dir> <PxxPyxPz> <x0> <y0> <z0> <x1> <y1> <z1>"
    );
    ExitCode::from(2)
}

fn config_err(msg: impl Into<String>) -> SpioError {
    SpioError::Config(msg.into())
}

/// `spio trace`: render a trace snapshot as an ASCII timeline, or export
/// it to Chrome trace-event JSON (load via chrome://tracing or Perfetto).
fn trace_cmd(file: &str, chrome_out: Option<&str>) -> Result<(), SpioError> {
    let text = std::fs::read_to_string(file)?;
    let snapshot = TraceSnapshot::from_json(&text).map_err(SpioError::Format)?;
    match chrome_out {
        Some(out) => {
            std::fs::write(out, chrome_trace(&snapshot))?;
            println!("wrote {out} ({} events)", snapshot.events.len());
        }
        None => print!("{}", Timeline::from_snapshot(&snapshot).render_ascii(100)),
    }
    Ok(())
}

/// `spio bench`: run the desk-scale Fig. 6 workload under full tracing,
/// optionally writing a perf record / trace artifacts, and gate against a
/// baseline record (exit 1 on regression).
fn bench_cmd(rest: &[String]) -> Result<(), SpioError> {
    let mut cfg = BenchConfig::default();
    let mut baseline = None;
    let mut write_out = None;
    let mut trace_out = None;
    let mut report_out = None;
    let mut metrics_out = None;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let val = rest
            .get(i + 1)
            .ok_or_else(|| config_err(format!("{flag} needs a value")))?;
        let parse_n = || {
            val.parse::<usize>()
                .map_err(|_| config_err(format!("{flag}: '{val}' is not a number")))
        };
        match flag {
            "--procs" => cfg.procs = parse_n()?.max(1),
            "--per-rank" => cfg.per_rank = parse_n()?,
            "--runs" => cfg.runs = parse_n()?.max(1),
            "--baseline" => baseline = Some(val.clone()),
            "--write" => write_out = Some(val.clone()),
            "--trace-out" => trace_out = Some(val.clone()),
            "--report-out" => report_out = Some(val.clone()),
            "--metrics-out" => metrics_out = Some(val.clone()),
            _ => return Err(config_err(format!("unknown flag {flag}"))),
        }
        i += 2;
    }
    // Load the baseline before the (slow) workload so a bad path or
    // malformed record fails fast.
    let base = baseline
        .as_ref()
        .map(|f| BenchRecord::from_json(&std::fs::read_to_string(f)?).map_err(SpioError::Format))
        .transpose()?;
    println!(
        "running fig6 workload: {} ranks x {} particles, {} run(s) per config",
        cfg.procs, cfg.per_rank, cfg.runs
    );
    let run = regression::run_fig6(&cfg);
    for c in &run.record.configs {
        let times: Vec<String> = c
            .phases
            .iter()
            .map(|p| format!("{}={}µs", p.phase, p.micros))
            .collect();
        println!("  {}: {}", c.config, times.join(" "));
    }
    if let Some(out) = &write_out {
        std::fs::write(out, run.record.to_json())?;
        println!("wrote baseline {out}");
    }
    if let Some(out) = &trace_out {
        std::fs::write(out, run.snapshot.to_json())?;
        println!("wrote trace snapshot {out}");
    }
    if let Some(out) = &report_out {
        std::fs::write(out, run.report.to_json())?;
        println!("wrote job report {out}");
    }
    if let Some(out) = &metrics_out {
        std::fs::write(out, &run.metrics_jsonl)?;
        println!("wrote metrics {out}");
    }
    if let Some(base) = &base {
        let base_file = baseline.as_deref().unwrap_or_default();
        let regressions = regression::compare(base, &run.record, regression::DEFAULT_THRESHOLD)
            .map_err(SpioError::Config)?;
        if regressions.is_empty() {
            println!("bench gate PASS vs {base_file}");
        } else {
            eprintln!("bench gate FAIL vs {base_file}:");
            for r in &regressions {
                eprintln!("  REGRESSION {r}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

/// `spio bench --read`: run the read-serving benchmark (cold vs warm
/// hot-spot query + multi-client replay), optionally writing a record and
/// gating against a baseline (exit 1 on regression).
fn read_bench_cmd(rest: &[String]) -> Result<(), SpioError> {
    let mut cfg = ReadBenchConfig::default();
    let mut baseline = None;
    let mut write_out = None;
    let mut report_out = None;
    let mut metrics_out = None;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let val = rest
            .get(i + 1)
            .ok_or_else(|| config_err(format!("{flag} needs a value")))?;
        let parse_n = || {
            val.parse::<usize>()
                .map_err(|_| config_err(format!("{flag}: '{val}' is not a number")))
        };
        match flag {
            "--procs" => cfg.procs = parse_n()?.max(1),
            "--per-rank" => cfg.per_rank = parse_n()?,
            "--clients" => cfg.clients = parse_n()?.max(1),
            "--queries" => cfg.queries_per_client = parse_n()?,
            "--runs" => cfg.runs = parse_n()?.max(1),
            "--baseline" => baseline = Some(val.clone()),
            "--write" => write_out = Some(val.clone()),
            "--report-out" => report_out = Some(val.clone()),
            "--metrics-out" => metrics_out = Some(val.clone()),
            _ => return Err(config_err(format!("unknown flag {flag}"))),
        }
        i += 2;
    }
    let base = baseline
        .as_ref()
        .map(|f| {
            ReadBenchRecord::from_json(&std::fs::read_to_string(f)?).map_err(SpioError::Format)
        })
        .transpose()?;
    println!(
        "running read workload: {} ranks x {} particles, {} clients x {} queries, {} run(s)",
        cfg.procs, cfg.per_rank, cfg.clients, cfg.queries_per_client, cfg.runs
    );
    let run = read_bench::run_read_bench(&cfg);
    println!(
        "  cold_box={}µs warm_box={}µs (speedup {:.1}x), replay hit rate {:.0}%",
        run.record.cold_box_us,
        run.record.warm_box_us,
        run.record.speedup(),
        run.record.hit_rate() * 100.0
    );
    if let Some(out) = &write_out {
        std::fs::write(out, run.record.to_json())?;
        println!("wrote baseline {out}");
    }
    if let Some(out) = &report_out {
        std::fs::write(out, run.report.to_json())?;
        println!("wrote job report {out}");
    }
    if let Some(out) = &metrics_out {
        std::fs::write(out, &run.metrics_jsonl)?;
        println!("wrote metrics {out}");
    }
    if let Some(base) = &base {
        let base_file = baseline.as_deref().unwrap_or_default();
        let regressions =
            read_bench::compare_read(base, &run.record, regression::DEFAULT_THRESHOLD)
                .map_err(SpioError::Config)?;
        if regressions.is_empty() {
            println!("read bench gate PASS vs {base_file}");
        } else {
            eprintln!("read bench gate FAIL vs {base_file}:");
            for r in &regressions {
                eprintln!("  REGRESSION {r}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

/// `spio serve-bench`: replay a seeded multi-client query workload against
/// an on-disk dataset through the serving engine and print the job report.
fn serve_bench_cmd(dir: &str, rest: &[String]) -> Result<(), SpioError> {
    let mut clients = 4usize;
    let mut spec = spio_serve::WorkloadSpec::default();
    let mut config = spio_serve::ServeConfig::default();
    let mut report_out = None;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let val = rest
            .get(i + 1)
            .ok_or_else(|| config_err(format!("{flag} needs a value")))?;
        let parse_n = || {
            val.parse::<usize>()
                .map_err(|_| config_err(format!("{flag}: '{val}' is not a number")))
        };
        match flag {
            "--clients" => clients = parse_n()?.max(1),
            "--queries" => spec.queries_per_client = parse_n()?,
            "--workers" => config.workers = parse_n()?.max(1),
            "--seed" => spec.seed = parse_n()? as u64,
            "--report-out" => report_out = Some(val.clone()),
            _ => return Err(config_err(format!("unknown flag {flag}"))),
        }
        i += 2;
    }
    let (text, report) = spio_tools::serve_bench(&open_dir(dir), clients, &spec, config)?;
    print!("{text}");
    if let Some(out) = &report_out {
        std::fs::write(out, report.to_json())?;
        println!("wrote job report {out}");
    }
    Ok(())
}

fn parse_f64s(args: &[String]) -> Option<Vec<f64>> {
    args.iter().map(|a| a.parse().ok()).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), &args[1..]) {
        ("inspect", [dir]) => spio_tools::inspect(&open_dir(dir)).map(|t| print!("{t}")),
        ("gen", [dir, rest @ ..]) if rest.len() <= 2 => {
            let parse = |i: usize, default: usize| match rest.get(i) {
                Some(v) => v.parse::<usize>().map_err(|_| ()),
                None => Ok(default),
            };
            let (Ok(procs), Ok(per_rank)) = (parse(0, 8), parse(1, 5_000)) else {
                return usage();
            };
            spio_tools::generate_uniform(&open_dir(dir), procs, per_rank, 42).map(|t| print!("{t}"))
        }
        ("validate", [dir]) => spio_tools::validate(&open_dir(dir)).map(|report| {
            println!(
                "checked {} files / {} particles",
                report.files_checked, report.particles_checked
            );
            if report.is_ok() {
                println!("dataset OK");
            } else {
                for p in &report.problems {
                    println!("PROBLEM: {p}");
                }
                std::process::exit(1);
            }
        }),
        ("query", rest) if rest.len() == 7 || rest.len() == 9 || rest.len() == 10 => {
            let dir = &rest[0];
            match parse_f64s(&rest[1..7]) {
                Some(c) => {
                    let q = Aabb3::new([c[0], c[1], c[2]], [c[3], c[4], c[5]]);
                    if rest.len() == 9 {
                        if rest[7] != "--lod" {
                            return usage();
                        }
                        let Ok(level) = rest[8].parse::<u32>() else {
                            return usage();
                        };
                        spio_tools::query_lod(&open_dir(dir), &q, level).map(|t| print!("{t}"))
                    } else {
                        let density = if rest.len() == 10 && rest[7] == "--density" {
                            match parse_f64s(&rest[8..10]) {
                                Some(d) => Some((d[0], d[1])),
                                None => return usage(),
                            }
                        } else if rest.len() == 10 {
                            return usage();
                        } else {
                            None
                        };
                        spio_tools::query(&open_dir(dir), &q, density).map(|t| print!("{t}"))
                    }
                }
                None => return usage(),
            }
        }
        ("report", [file]) => std::fs::read_to_string(file)
            .map_err(Into::into)
            .and_then(|json| spio_tools::report(&json))
            .map(|t| print!("{t}")),
        ("trace", [file]) => trace_cmd(file, None),
        ("trace", [file, flag, out]) if flag == "--chrome" => trace_cmd(file, Some(out)),
        ("check-trace", [file]) => std::fs::read_to_string(file)
            .map_err(SpioError::from)
            .and_then(|json| validate_chrome_trace(&json).map_err(SpioError::Format))
            .map(|()| println!("chrome trace OK")),
        ("bench", rest) if rest.first().map(String::as_str) == Some("--read") => {
            read_bench_cmd(&rest[1..])
        }
        ("bench", rest) => bench_cmd(rest),
        ("serve-bench", [dir, rest @ ..]) => serve_bench_cmd(dir, rest),
        ("lint", rest) => {
            let update = rest.iter().any(|a| a == "--update");
            let roots: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            let root = match roots.as_slice() {
                [] => ".",
                [r] => r.as_str(),
                _ => return usage(),
            };
            spio_tools::lint_ratchet(root, update).map(|(text, ok)| {
                print!("{text}");
                if !ok {
                    std::process::exit(1);
                }
            })
        }
        ("verify-comm", rest) => {
            let mut procs = 4usize;
            let mut seeds = 16u64;
            let mut i = 0;
            let mut bad = false;
            while i < rest.len() {
                match (
                    rest[i].as_str(),
                    rest.get(i + 1).and_then(|v| v.parse::<u64>().ok()),
                ) {
                    ("--procs", Some(n)) => procs = n as usize,
                    ("--seeds", Some(n)) => seeds = n,
                    _ => {
                        bad = true;
                        break;
                    }
                }
                i += 2;
            }
            if bad {
                return usage();
            }
            spio_tools::verify_comm(procs, seeds).map(|t| print!("{t}"))
        }
        ("series", [dir]) => spio_tools::series_info(&open_dir(dir)).map(|t| print!("{t}")),
        ("render", [dir, out]) => spio_tools::render_ppm(&open_dir(dir), 640, 640)
            .and_then(|img| std::fs::write(out, img).map_err(Into::into))
            .map(|()| println!("wrote {out}")),
        ("lod", [dir]) => spio_tools::lod_stats(&open_dir(dir), 1).map(|t| print!("{t}")),
        ("lod", [dir, readers]) => match readers.parse() {
            Ok(n) => spio_tools::lod_stats(&open_dir(dir), n).map(|t| print!("{t}")),
            Err(_) => return usage(),
        },
        ("convert-fpp", rest) if rest.len() == 10 => {
            let (src, dst) = (&rest[0], &rest[2]);
            let Ok(nwriters) = rest[1].parse::<usize>() else {
                return usage();
            };
            let Ok(factor) = PartitionFactor::parse(&rest[3]) else {
                return usage();
            };
            let Some(c) = parse_f64s(&rest[4..10]) else {
                return usage();
            };
            let domain = Aabb3::new([c[0], c[1], c[2]], [c[3], c[4], c[5]]);
            spio_tools::convert_fpp(&open_dir(src), nwriters, &open_dir(dst), factor, domain)
                .map(|t| print!("{t}"))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
